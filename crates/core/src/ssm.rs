//! Symmetric subgraph matching over the AutoTree (`SSM-AT`, Algorithm 6),
//! plus the two primitives the paper's application studies are built on:
//!
//! * [`symmetric_key`] — a canonical key for a vertex set `S` such that two
//!   sets have equal keys **iff** some automorphism of `(G, π)` maps one
//!   onto the other (the clustering key of Table 7).
//! * [`count_images`] — the exact number of distinct images of `S` under
//!   `Aut(G, π)` (the seed-set counts of Table 6), as a [`BigUint`] because
//!   real counts reach `10^88`.
//! * [`enumerate_images`] — the actual matches (Algorithm 6), with a result
//!   limit since counts are often astronomically large; truncated runs are
//!   marked explicitly in [`SsmMatches::truncated`].
//!
//! Every primitive has a `try_` variant taking a [`Budget`], which meters
//! the recursion (one work unit per tree node or orbit image) and aborts
//! with a typed [`DviclError`] on exhaustion or cancellation. The
//! infallible names wrap the `try_` forms with [`Budget::unlimited`] and
//! panic on invalid query sets, preserving the historical contract.
//!
//! All primitives walk the same recursion: a set is partitioned over a
//! node's children; within a sibling class the per-child *patterns*
//! (recursive keys) may be assigned to any distinct children of the class,
//! because `Aut(g)` restricted to a class is the full wreath product
//! `Aut(child) ≀ S_k` (see `crate::aut`).

use crate::tree::{AutoTree, NodeId, NodeKind};
use dvicl_canon::{try_canonical_form as ir_try_canonical_form, Config};
use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Coloring, GraphBuilder, V};
use dvicl_group::BigUint;
use rustc_hash::{FxHashMap, FxHashSet};

/// One pattern instance inside a sibling class: canonical key plus the
/// (child position, child node, vertex subset) it came from.
type KeyedInstance<'a> = (Vec<u8>, &'a (u32, NodeId, Vec<V>));

/// Precomputed navigation over an AutoTree: vertex → leaf, child → position
/// in parent. Build once, share across many SSM queries.
pub struct SsmIndex {
    leaf_of: Vec<NodeId>,
    pos_in_parent: Vec<u32>,
}

impl SsmIndex {
    /// Builds the index for `tree`.
    pub fn new(tree: &AutoTree) -> Self {
        let n = tree.pi.n();
        let mut leaf_of = vec![usize::MAX; n];
        let mut pos_in_parent = vec![0u32; tree.len()];
        for node in tree.nodes() {
            for (pos, &c) in node.children().iter().enumerate() {
                // dvicl-lint: allow(narrowing-cast) -- a node has at most n <= V::MAX children
                pos_in_parent[c] = pos as u32;
            }
            if node.children().is_empty() {
                for &v in node.verts() {
                    leaf_of[v as usize] = node.id();
                }
            }
        }
        SsmIndex {
            leaf_of,
            pos_in_parent,
        }
    }

    /// The child of `node` whose subtree contains `v` (`v` must be in the
    /// node's subgraph but `node` must not be `v`'s leaf).
    // dvicl-lint: allow(budget-reachability) -- walks one leaf-to-node path, O(tree depth); callers meter per query vertex
    fn child_under(&self, tree: &AutoTree, node: NodeId, v: V) -> NodeId {
        let mut cur = self.leaf_of[v as usize];
        loop {
            // dvicl-lint: allow(panic-freedom) -- the caller guarantees v lies strictly below node, so the walk hits node before the root
            let parent = tree.node(cur).parent().expect("v lies under node");
            if parent == node {
                return cur;
            }
            cur = parent;
        }
    }

    /// Partitions `set` among the children of `node`; returns
    /// `(child position, child id, subset)` sorted by position.
    fn partition(&self, tree: &AutoTree, node: NodeId, set: &[V]) -> Vec<(u32, NodeId, Vec<V>)> {
        let mut by_child: FxHashMap<NodeId, Vec<V>> = FxHashMap::default();
        for &v in set {
            let c = self.child_under(tree, node, v);
            by_child.entry(c).or_default().push(v);
        }
        let mut out: Vec<(u32, NodeId, Vec<V>)> = by_child
            .into_iter()
            .map(|(c, mut vs)| {
                vs.sort_unstable();
                (self.pos_in_parent[c], c, vs)
            })
            .collect();
        out.sort_unstable();
        out
    }
}

fn validate_set(tree: &AutoTree, set: &[V]) -> Result<Vec<V>, DviclError> {
    if set.is_empty() {
        return Err(DviclError::invalid(
            "SSM queries need a non-empty vertex set",
        ));
    }
    let n = tree.pi.n();
    let mut s: Vec<V> = set.to_vec();
    s.sort_unstable();
    s.dedup();
    if let Some(&v) = s.iter().find(|&&v| (v as usize) >= n) {
        return Err(DviclError::invalid(format!(
            "SSM query vertex {v} out of range for a {n}-vertex graph"
        )));
    }
    Ok(s)
}

// ---------------------------------------------------------------------
// Keys and counts (one recursion computes both).
// ---------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Canonical key of `set` under `Aut(G, π)`: equal keys ⇔ symmetric sets.
///
/// Panics on an empty or out-of-range query set; [`try_symmetric_key`] is
/// the fallible, budget-aware form.
pub fn symmetric_key(tree: &AutoTree, index: &SsmIndex, set: &[V]) -> Vec<u8> {
    try_symmetric_key(tree, index, set, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- documented panicking wrapper: only an invalid query set can reach the Err arm, as stated in the doc comment
        .unwrap_or_else(|e| panic!("SSM query failed: {e}"))
}

/// Budgeted [`symmetric_key`]: rejects invalid query sets as
/// [`DviclError::InvalidInput`] and meters the recursion against `budget`.
pub fn try_symmetric_key(
    tree: &AutoTree,
    index: &SsmIndex,
    set: &[V],
    budget: &Budget,
) -> Result<Vec<u8>, DviclError> {
    let set = validate_set(tree, set)?;
    Ok(analyze(tree, index, tree.root(), &set, budget, &mut GraphBuilder::new(0))?.0)
}

/// Exact number of distinct images of `set` under `Aut(G, π)` (including
/// `set` itself).
///
/// Panics on an empty or out-of-range query set; [`try_count_images`] is
/// the fallible, budget-aware form.
///
/// ```
/// use dvicl_graph::{named, Coloring};
/// use dvicl_core::{build_autotree, DviclOptions};
/// use dvicl_core::ssm::{count_images, SsmIndex};
/// // A pair of star leaves has C(5, 2) = 10 symmetric images.
/// let g = named::star(5);
/// let tree = build_autotree(&g, &Coloring::unit(6), &DviclOptions::default());
/// let index = SsmIndex::new(&tree);
/// assert_eq!(count_images(&tree, &index, &[1, 2]).to_u64(), Some(10));
/// ```
pub fn count_images(tree: &AutoTree, index: &SsmIndex, set: &[V]) -> BigUint {
    try_count_images(tree, index, set, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- convenience wrapper: with an unlimited budget only an invalid query set can reach the Err arm
        .unwrap_or_else(|e| panic!("SSM query failed: {e}"))
}

/// Budgeted [`count_images`].
pub fn try_count_images(
    tree: &AutoTree,
    index: &SsmIndex,
    set: &[V],
    budget: &Budget,
) -> Result<BigUint, DviclError> {
    let _span = dvicl_obs::span("core.ssm");
    let set = validate_set(tree, set)?;
    Ok(analyze(tree, index, tree.root(), &set, budget, &mut GraphBuilder::new(0))?.1)
}

/// True iff some automorphism maps `a` onto `b` (as sets).
///
/// Panics on an empty or out-of-range query set; [`try_same_symmetry`] is
/// the fallible, budget-aware form.
pub fn same_symmetry(tree: &AutoTree, index: &SsmIndex, a: &[V], b: &[V]) -> bool {
    try_same_symmetry(tree, index, a, b, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- documented panicking wrapper: only an invalid query set can reach the Err arm, as stated in the doc comment
        .unwrap_or_else(|e| panic!("SSM query failed: {e}"))
}

/// Budgeted [`same_symmetry`].
pub fn try_same_symmetry(
    tree: &AutoTree,
    index: &SsmIndex,
    a: &[V],
    b: &[V],
    budget: &Budget,
) -> Result<bool, DviclError> {
    let a = validate_set(tree, a)?;
    let b = validate_set(tree, b)?;
    if a.len() != b.len() {
        return Ok(false);
    }
    if a == b {
        return Ok(true);
    }
    let mut builder = GraphBuilder::new(0);
    Ok(analyze(tree, index, tree.root(), &a, budget, &mut builder)?.0
        == analyze(tree, index, tree.root(), &b, budget, &mut builder)?.0)
}

/// Recursive analysis: (canonical pattern key, image count) of `set` within
/// the subgraph of `node`. `set` is sorted and entirely inside the node.
/// Spends one work unit per visited tree node.
///
/// `builder` is one query-wide [`GraphBuilder`]: every non-singleton leaf
/// the query touches rebuilds its local graph through the same buffers.
fn analyze(
    tree: &AutoTree,
    index: &SsmIndex,
    node: NodeId,
    set: &[V],
    gov: &Budget,
    builder: &mut GraphBuilder,
) -> Result<(Vec<u8>, BigUint), DviclError> {
    dvicl_obs::bump(dvicl_obs::Counter::SsmStates);
    dvicl_govern::fault::checkpoint("core.ssm")?;
    gov.spend(1)?;
    let n = tree.node(node);
    match n.kind() {
        NodeKind::SingletonLeaf => Ok((vec![0x01], BigUint::one())),
        NodeKind::NonSingletonLeaf => analyze_leaf(tree, node, set, gov, builder),
        NodeKind::Internal => {
            let parts = index.partition(tree, node, set);
            let mut key = Vec::new();
            let mut count = BigUint::one();
            // Per-child analysis, then grouped per sibling class.
            let analyzed: Vec<(u32, Vec<u8>, BigUint)> = parts
                .into_iter()
                .map(|(pos, child, subset)| {
                    analyze(tree, index, child, &subset, gov, builder).map(|(k, c)| (pos, k, c))
                })
                .collect::<Result<_, _>>()?;
            for (class_idx, &(start, end)) in n.sibling_classes().iter().enumerate() {
                let in_class: Vec<&(u32, Vec<u8>, BigUint)> = analyzed
                    .iter()
                    .filter(|&&(pos, _, _)| start <= pos && pos < end)
                    .collect();
                if in_class.is_empty() {
                    continue;
                }
                let c = (end - start) as u64; // class size
                let t = in_class.len() as u64; // occupied children
                // Sort the pattern keys; runs of equal keys are
                // interchangeable assignments.
                let mut keys: Vec<&Vec<u8>> = in_class.iter().map(|x| &x.1).collect();
                keys.sort();
                // Key contribution.
                // dvicl-lint: allow(narrowing-cast) -- class_idx counts sibling classes, at most n <= V::MAX
                push_u32(&mut key, 0xA5A5_0000 | class_idx as u32);
                // dvicl-lint: allow(narrowing-cast) -- t <= the class size c <= n <= V::MAX
                push_u32(&mut key, t as u32);
                for k in &keys {
                    // dvicl-lint: allow(narrowing-cast) -- a child key holds O(n) u32 words, far below u32::MAX bytes
                    push_u32(&mut key, k.len() as u32);
                    key.extend_from_slice(k);
                }
                // Count contribution: assignments × within-child images.
                // #assignments = C(c, k_1)·C(c-k_1, k_2)·…, over runs k_i.
                let mut remaining = c;
                let mut i = 0;
                while i < keys.len() {
                    let mut j = i;
                    while j < keys.len() && keys[j] == keys[i] {
                        j += 1;
                    }
                    let run = (j - i) as u64;
                    count *= &BigUint::binomial(remaining, run);
                    remaining -= run;
                    i = j;
                }
                let _ = remaining;
                for x in &in_class {
                    count *= &x.2;
                }
                let _ = t;
            }
            Ok((key, count))
        }
    }
}

/// Pattern analysis inside a non-singleton leaf: canonicalize the leaf's
/// colored graph with set-membership folded into the colors; count the
/// orbit of the set under the leaf's automorphism group by BFS.
fn analyze_leaf(
    tree: &AutoTree,
    node: NodeId,
    set: &[V],
    gov: &Budget,
    builder: &mut GraphBuilder,
) -> Result<(Vec<u8>, BigUint), DviclError> {
    let n = tree.node(node);
    // Local graph + colors with the set distinguished.
    let verts = n.verts();
    let in_set: Vec<bool> = verts
        .iter()
        .map(|v| set.binary_search(v).is_ok())
        .collect();
    let vmap: FxHashMap<V, u32> = verts
        .iter()
        .enumerate()
        // dvicl-lint: allow(narrowing-cast) -- i indexes the leaf's vertices, at most n <= V::MAX
        .map(|(i, &v)| (v, i as u32))
        .collect();
    // Recover the leaf's induced edges from the original graph structure
    // stored in the tree: the leaf's certificate has them, relabeled; it is
    // cheaper to rebuild from labels. `form.edges` are (γ(u), γ(v)); invert
    // the labels to get local endpoints.
    let mut label_to_local: FxHashMap<V, u32> = FxHashMap::default();
    for (i, &l) in n.labels().iter().enumerate() {
        // dvicl-lint: allow(narrowing-cast) -- i indexes the leaf's labels, at most n <= V::MAX
        label_to_local.insert(l, i as u32);
    }
    builder.reset(verts.len());
    for &(la, lb) in n.form().edges {
        builder.add_edge(label_to_local[&la], label_to_local[&lb]);
    }
    let g = builder.build_reusing();
    // Colors: (global color, in-set flag) — from_labels orders cells by
    // value, so in-set halves follow out-set halves deterministically.
    let labels: Vec<V> = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| tree.pi.color_of(v) << 1 | in_set[i] as V)
        .collect();
    let pi = Coloring::from_labels(&labels);
    let res = ir_try_canonical_form(&g, &pi, &Config::bliss_like(), gov)?;
    let mut key = vec![0x5A];
    for &(c, m) in &res.form.colors {
        push_u32(&mut key, c);
        push_u32(&mut key, m);
    }
    for &(a, b) in &res.form.edges {
        push_u32(&mut key, a);
        push_u32(&mut key, b);
    }
    // Orbit of the set under the leaf group (as local index sets).
    let local_set: Vec<u32> = set.iter().map(|v| vmap[v]).collect();
    let gens: Vec<FxHashMap<u32, u32>> = n
        .leaf_generators()
        .map(|sparse| {
            sparse
                .iter()
                .map(|&(a, b)| (vmap[&a], vmap[&b]))
                .collect()
        })
        .collect();
    let count = orbit_of_set(&local_set, &gens, None, gov)?
        .map(|orbit| BigUint::from_u64(orbit.len() as u64))
        // dvicl-lint: allow(panic-freedom) -- orbit_of_set returns Ok(None) only when a cap is given, and cap is None here
        .expect("uncapped orbit enumeration cannot fail");
    Ok((key, count))
}

/// BFS over set images under sparse generators; `cap` bounds the orbit size
/// (None = unbounded). Returns the orbit as sorted sets, or `Ok(None)` if
/// the cap was hit. Spends one work unit per explored image.
fn orbit_of_set(
    start: &[u32],
    gens: &[FxHashMap<u32, u32>],
    cap: Option<usize>,
    gov: &Budget,
) -> Result<Option<Vec<Vec<u32>>>, DviclError> {
    let mut start = start.to_vec();
    start.sort_unstable();
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    seen.insert(start.clone());
    let mut queue = vec![start];
    let mut head = 0;
    while head < queue.len() {
        dvicl_obs::bump(dvicl_obs::Counter::SsmStates);
    gov.spend(1)?;
        let cur = queue[head].clone();
        head += 1;
        for gen in gens {
            let mut img: Vec<u32> = cur
                .iter()
                .map(|v| gen.get(v).copied().unwrap_or(*v))
                .collect();
            img.sort_unstable();
            if seen.insert(img.clone()) {
                if let Some(c) = cap {
                    if seen.len() > c {
                        return Ok(None);
                    }
                }
                queue.push(img);
            }
        }
    }
    Ok(Some(queue))
}

// ---------------------------------------------------------------------
// Enumeration (SSM-AT, Algorithm 6).
// ---------------------------------------------------------------------

/// Result of an [`enumerate_images`] run.
#[derive(Clone, Debug)]
pub struct SsmMatches {
    /// Distinct images found (each sorted ascending); includes the query.
    pub matches: Vec<Vec<V>>,
    /// True iff the result limit stopped the enumeration before every
    /// image was produced. The matches returned are still genuine images;
    /// the set is just not exhaustive.
    pub truncated: bool,
}

/// Enumerates the images of `set` under `Aut(G, π)` — the symmetric
/// subgraphs of Algorithm 6 — up to `limit` results.
///
/// Panics on an empty or out-of-range query set; [`try_enumerate_images`]
/// is the fallible, budget-aware form.
pub fn enumerate_images(
    tree: &AutoTree,
    index: &SsmIndex,
    set: &[V],
    limit: usize,
) -> SsmMatches {
    try_enumerate_images(tree, index, set, limit, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- documented panicking wrapper: only an invalid query set can reach the Err arm, as stated in the doc comment
        .unwrap_or_else(|e| panic!("SSM query failed: {e}"))
}

/// Budgeted [`enumerate_images`]. The `limit` caps how many matches are
/// returned (truncation is reported in the result, not as an error); the
/// [`Budget`] meters the traversal itself and aborts with a typed error on
/// exhaustion or cancellation.
pub fn try_enumerate_images(
    tree: &AutoTree,
    index: &SsmIndex,
    set: &[V],
    limit: usize,
    budget: &Budget,
) -> Result<SsmMatches, DviclError> {
    let _span = dvicl_obs::span("core.ssm");
    let set = validate_set(tree, set)?;
    let mut builder = GraphBuilder::new(0);
    let mut slots = limit;
    let matches = enum_at(tree, index, tree.root(), &set, &mut slots, budget, &mut builder)?;
    // The run is truncated iff the true image count exceeds what was
    // returned (the slot accounting inside the recursion is conservative).
    let truncated = match analyze(tree, index, tree.root(), &set, budget, &mut builder)?
        .1
        .to_u64()
    {
        Some(c) => c as usize != matches.len(),
        None => true,
    };
    Ok(SsmMatches { matches, truncated })
}

fn enum_at(
    tree: &AutoTree,
    index: &SsmIndex,
    node: NodeId,
    set: &[V],
    slots: &mut usize,
    gov: &Budget,
    builder: &mut GraphBuilder,
) -> Result<Vec<Vec<V>>, DviclError> {
    dvicl_obs::bump(dvicl_obs::Counter::SsmStates);
    dvicl_govern::fault::checkpoint("core.ssm")?;
    gov.spend(1)?;
    if *slots == 0 {
        return Ok(Vec::new());
    }
    let n = tree.node(node);
    match n.kind() {
        NodeKind::SingletonLeaf => {
            *slots = slots.saturating_sub(1);
            Ok(vec![set.to_vec()])
        }
        NodeKind::NonSingletonLeaf => {
            let vmap: FxHashMap<V, u32> = n
                .verts()
                .iter()
                .enumerate()
                // dvicl-lint: allow(narrowing-cast) -- i indexes the leaf's vertices, at most n <= V::MAX
                .map(|(i, &v)| (v, i as u32))
                .collect();
            let local: Vec<u32> = set.iter().map(|v| vmap[v]).collect();
            let gens: Vec<FxHashMap<u32, u32>> = n
                .leaf_generators()
                .map(|s| s.iter().map(|&(a, b)| (vmap[&a], vmap[&b])).collect())
                .collect();
            let orbit = orbit_of_set(&local, &gens, Some(*slots), gov)?.unwrap_or_default();
            let out: Vec<Vec<V>> = orbit
                .into_iter()
                .take(*slots)
                .map(|s| {
                    let mut g: Vec<V> = s.iter().map(|&i| n.verts()[i as usize]).collect();
                    g.sort_unstable();
                    g
                })
                .collect();
            *slots = slots.saturating_sub(out.len());
            Ok(out)
        }
        NodeKind::Internal => {
            let parts = index.partition(tree, node, set);
            // Per class: the list of vertex-set options the class can
            // contribute (one per combined assignment + image choice).
            let mut per_class_options: Vec<Vec<Vec<V>>> = Vec::new();
            for &(start, end) in n.sibling_classes() {
                let instances: Vec<&(u32, NodeId, Vec<V>)> = parts
                    .iter()
                    .filter(|&&(pos, _, _)| start <= pos && pos < end)
                    .collect();
                if instances.is_empty() {
                    continue;
                }
                // Images of each instance inside its own child, then
                // transferred to every child of the class.
                // Group instances by key to avoid duplicate assignments.
                let mut keyed: Vec<KeyedInstance> = Vec::with_capacity(instances.len());
                for inst in &instances {
                    keyed.push((analyze(tree, index, inst.1, &inst.2, gov, builder)?.0, *inst));
                }
                keyed.sort_by(|a, b| a.0.cmp(&b.0));
                // For each run of equal keys, enumerate combinations of
                // target children; accumulate class-level option lists.
                let class_children: Vec<NodeId> =
                    n.children()[start as usize..end as usize].to_vec();
                let class_options = assign_and_enumerate(
                    tree,
                    index,
                    &keyed,
                    &class_children,
                    slots,
                    gov,
                    builder,
                )?;
                per_class_options.push(class_options);
            }
            // Cartesian product across classes.
            let mut acc: Vec<Vec<V>> = vec![Vec::new()];
            for options in per_class_options {
                let mut next = Vec::new();
                'outer: for base in &acc {
                    for opt in &options {
                        let mut merged = base.clone();
                        merged.extend_from_slice(opt);
                        next.push(merged);
                        if next.len() >= *slots {
                            break 'outer;
                        }
                    }
                }
                acc = next;
            }
            for s in &mut acc {
                s.sort_unstable();
            }
            *slots = slots.saturating_sub(acc.len());
            Ok(acc)
        }
    }
}

/// Enumerates, for one sibling class, every way to (a) assign the pattern
/// instances (grouped into runs of equal keys) to distinct children of the
/// class and (b) pick a concrete image inside each chosen child. Returns
/// the flattened vertex sets (one per combined choice).
fn assign_and_enumerate(
    tree: &AutoTree,
    index: &SsmIndex,
    keyed: &[KeyedInstance],
    class_children: &[NodeId],
    slots: &mut usize,
    gov: &Budget,
    builder: &mut GraphBuilder,
) -> Result<Vec<Vec<V>>, DviclError> {
    // Runs of equal keys.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < keyed.len() {
        let mut j = i;
        while j < keyed.len() && keyed[j].0 == keyed[i].0 {
            j += 1;
        }
        runs.push((i, j));
        i = j;
    }
    // For each run, the representative instance's images inside its home
    // child, then transfer maps to each class child (computed lazily).
    let mut results: Vec<Vec<V>> = Vec::new();
    let mut chosen: Vec<(usize, usize)> = Vec::new(); // (run idx, child slot)
    assign_rec(
        tree,
        index,
        keyed,
        &runs,
        0,
        class_children,
        &mut vec![false; class_children.len()],
        &mut chosen,
        &mut results,
        slots,
        gov,
        builder,
    )?;
    Ok(results)
}

#[allow(clippy::too_many_arguments)]
fn assign_rec(
    tree: &AutoTree,
    index: &SsmIndex,
    keyed: &[KeyedInstance],
    runs: &[(usize, usize)],
    run_idx: usize,
    class_children: &[NodeId],
    used: &mut Vec<bool>,
    chosen: &mut Vec<(usize, usize)>,
    results: &mut Vec<Vec<V>>,
    slots: &mut usize,
    gov: &Budget,
    builder: &mut GraphBuilder,
) -> Result<(), DviclError> {
    dvicl_obs::bump(dvicl_obs::Counter::SsmStates);
    gov.spend(1)?;
    if results.len() >= *slots {
        return Ok(());
    }
    if run_idx == runs.len() {
        // All pattern instances placed: enumerate concrete images per
        // placement (cartesian product over placements).
        let mut acc: Vec<Vec<V>> = vec![Vec::new()];
        for &(ri, slot) in chosen.iter() {
            let (start, _) = runs[ri];
            let (_, inst) = &keyed[start];
            let home = inst.1;
            let target = class_children[slot];
            let mut local_slots = *slots;
            let home_images = enum_at(tree, index, home, &inst.2, &mut local_slots, gov, builder)?;
            // Transfer each image to the target child.
            let images: Vec<Vec<V>> = if home == target {
                home_images
            } else {
                let iso: FxHashMap<V, V> = tree
                    .sibling_isomorphism(home, target)
                    .into_iter()
                    .collect();
                home_images
                    .into_iter()
                    .map(|img| {
                        let mut t: Vec<V> = img.iter().map(|v| iso[v]).collect();
                        t.sort_unstable();
                        t
                    })
                    .collect()
            };
            let mut next = Vec::new();
            for base in &acc {
                for img in &images {
                    let mut merged = base.clone();
                    merged.extend_from_slice(img);
                    next.push(merged);
                    if next.len() >= *slots {
                        break;
                    }
                }
                if next.len() >= *slots {
                    break;
                }
            }
            acc = next;
        }
        results.extend(acc);
        return Ok(());
    }
    // Place every instance of this run into distinct unused child slots.
    let (start, end) = runs[run_idx];
    let count = end - start;
    // Choose `count` unused slots (combinations, ascending, to avoid
    // duplicate unordered assignments of equal-key instances).
    // dvicl-lint: allow(budget-reachability) -- enumerates C(slots, count) combinations; the caller spends budget per assignment it consumes
    fn combos(
        used: &mut Vec<bool>,
        from: usize,
        remaining: usize,
        picked: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if remaining == 0 {
            out.push(picked.clone());
            return;
        }
        for s in from..used.len() {
            if used[s] {
                continue;
            }
            used[s] = true;
            picked.push(s);
            combos(used, s + 1, remaining - 1, picked, out);
            picked.pop();
            used[s] = false;
        }
    }
    let mut options = Vec::new();
    combos(used, 0, count, &mut Vec::new(), &mut options);
    for picked in options {
        for (k, &s) in picked.iter().enumerate() {
            used[s] = true;
            chosen.push((run_idx, s));
            let _ = k;
        }
        assign_rec(
            tree,
            index,
            keyed,
            runs,
            run_idx + 1,
            class_children,
            used,
            chosen,
            results,
            slots,
            gov,
            builder,
        )?;
        for &s in &picked {
            used[s] = false;
            chosen.pop();
        }
        if results.len() >= *slots {
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_autotree, DviclOptions};
    use dvicl_graph::{named, Coloring, Graph};
    use dvicl_group::brute;

    fn setup(g: &Graph) -> (AutoTree, SsmIndex) {
        let t = build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default());
        let i = SsmIndex::new(&t);
        (t, i)
    }

    /// Ground truth: distinct images of `set` under brute-force Aut(G).
    fn brute_images(g: &Graph, set: &[V]) -> Vec<Vec<V>> {
        let pi = Coloring::unit(g.n());
        let mut out: FxHashSet<Vec<V>> = FxHashSet::default();
        for gamma in brute::automorphisms(g, &pi) {
            let mut img: Vec<V> = set.iter().map(|&v| gamma.apply(v)).collect();
            img.sort_unstable();
            out.insert(img);
        }
        let mut v: Vec<Vec<V>> = out.into_iter().collect();
        v.sort();
        v
    }

    #[test]
    fn counts_match_brute_force() {
        let cases: Vec<(Graph, Vec<V>)> = vec![
            (named::fig1_example(), vec![4]),          // orbit {4,5,6}: 3
            (named::fig1_example(), vec![0, 4]),       // 4 × 3 = 12
            (named::fig1_example(), vec![4, 5]),       // pairs in triangle: 3
            (named::fig1_example(), vec![0, 1]),       // cycle edges: 4
            (named::fig1_example(), vec![0, 2]),       // cycle diagonal: 2
            (named::star(5), vec![1, 2]),              // C(5,2) = 10
            (named::rary_tree(2, 2), vec![3]),         // 4 grandchildren
            (named::rary_tree(2, 2), vec![3, 4]),      // sibling pairs: 2
            (named::rary_tree(2, 2), vec![3, 5]),      // cross pairs: 4
            (named::petersen(), vec![0, 1]),           // edges: 15
            (named::petersen(), vec![0, 2]),           // non-edges: 30
            (named::hypercube(3), vec![0, 3, 5, 6]),   // one tetrahedral class: 2
        ];
        for (g, set) in cases {
            let (t, i) = setup(&g);
            let expected = brute_images(&g, &set).len() as u64;
            assert_eq!(
                count_images(&t, &i, &set).to_u64(),
                Some(expected),
                "count mismatch for {g:?} set {set:?}"
            );
        }
    }

    #[test]
    fn enumeration_matches_brute_force() {
        let cases: Vec<(Graph, Vec<V>)> = vec![
            (named::fig1_example(), vec![4]),
            (named::fig1_example(), vec![0, 4]),
            (named::fig1_example(), vec![0, 1, 4]),
            (named::star(5), vec![1, 2]),
            (named::rary_tree(2, 2), vec![3, 5]),
            (named::petersen(), vec![0, 1, 2]),
        ];
        for (g, set) in cases {
            let (t, i) = setup(&g);
            let mut truth = brute_images(&g, &set);
            let res = enumerate_images(&t, &i, &set, 10_000);
            assert!(!res.truncated, "{g:?} {set:?} truncated");
            let mut got = res.matches.clone();
            got.sort();
            got.dedup();
            truth.sort();
            assert_eq!(got, truth, "enumeration mismatch for {g:?} set {set:?}");
        }
    }

    #[test]
    fn keys_classify_symmetry_like_brute_force() {
        // All 2-subsets of fig1: keys equal iff brute-force symmetric.
        let g = named::fig1_example();
        let (t, i) = setup(&g);
        let pi = Coloring::unit(8);
        let autos = brute::automorphisms(&g, &pi);
        let sets: Vec<Vec<V>> = (0..8)
            .flat_map(|a| ((a + 1)..8).map(move |b| vec![a as V, b as V]))
            .collect();
        for s1 in &sets {
            for s2 in &sets {
                let truly = autos.iter().any(|gamma| {
                    let mut img: Vec<V> = s1.iter().map(|&v| gamma.apply(v)).collect();
                    img.sort_unstable();
                    img == *s2
                });
                let by_key = same_symmetry(&t, &i, s1, s2);
                assert_eq!(truly, by_key, "key disagreement on {s1:?} vs {s2:?}");
            }
        }
    }

    #[test]
    fn example_6_11_shape() {
        // The paper's Example 6.11 runs on the Fig. 3 graph: a query path
        // of (pendant, clique-member, other-clique-member) has 6 images
        // inside one wing-triple and 6 more... our fig3 analog: query the
        // 2-path (pendant p, clique member c) plus one other clique member.
        // We verify the SSM result against brute force instead of the
        // paper's absolute listing (our fig3 differs in the second level).
        let g = named::fig3_example();
        let (t, i) = setup(&g);
        let query: Vec<V> = vec![3, 2, 4]; // pendant 3 - clique 2 - clique 4
        let truth = brute_images(&g, &query);
        let res = enumerate_images(&t, &i, &query, 1000);
        assert!(!res.truncated);
        let mut got = res.matches.clone();
        got.sort();
        assert_eq!(got, truth);
        assert_eq!(
            count_images(&t, &i, &query).to_u64(),
            Some(truth.len() as u64)
        );
    }

    #[test]
    fn result_limit_truncates() {
        let g = named::star(8);
        let (t, i) = setup(&g);
        // C(8,3) = 56 images of a 3-leaf subset.
        let res = enumerate_images(&t, &i, &[1, 2, 3], 10);
        assert!(res.truncated);
        assert!(res.matches.len() <= 10);
        assert!(!res.matches.is_empty());
        let full = enumerate_images(&t, &i, &[1, 2, 3], 100);
        assert!(!full.truncated);
        assert_eq!(full.matches.len(), 56);
        assert_eq!(count_images(&t, &i, &[1, 2, 3]).to_u64(), Some(56));
    }

    #[test]
    fn whole_vertex_set_is_rigid() {
        let g = named::fig1_example();
        let (t, i) = setup(&g);
        let all: Vec<V> = (0..8).collect();
        assert_eq!(count_images(&t, &i, &all).to_u64(), Some(1));
    }

    #[test]
    fn asymmetric_graph_all_counts_one() {
        let g = named::frucht();
        let (t, i) = setup(&g);
        for v in 0..12 {
            assert_eq!(count_images(&t, &i, &[v]).to_u64(), Some(1));
        }
        assert_eq!(count_images(&t, &i, &[0, 5, 9]).to_u64(), Some(1));
    }

    #[test]
    fn large_counts_use_bigint() {
        // A star with 70 leaves: C(70, 35) ≈ 1.1E20 > u64 for the orbit of
        // a 35-leaf subset.
        let g = named::star(70);
        let (t, i) = setup(&g);
        let set: Vec<V> = (1..=35).collect();
        let c = count_images(&t, &i, &set);
        assert_eq!(c.to_decimal(), BigUint::binomial(70, 35).to_decimal());
        assert!(c.to_u64().is_none());
    }

    #[test]
    fn invalid_queries_are_typed_errors() {
        let g = named::star(5);
        let (t, i) = setup(&g);
        let b = Budget::unlimited();
        assert!(matches!(
            try_count_images(&t, &i, &[], &b),
            Err(DviclError::InvalidInput(_))
        ));
        assert!(matches!(
            try_symmetric_key(&t, &i, &[99], &b),
            Err(DviclError::InvalidInput(_))
        ));
    }

    #[test]
    fn work_budget_aborts_enumeration() {
        use dvicl_govern::Resource;
        let g = named::star(8);
        let (t, i) = setup(&g);
        let tight = Budget::with_max_work(2);
        let err = try_enumerate_images(&t, &i, &[1, 2, 3], 1000, &tight).unwrap_err();
        assert!(matches!(
            err,
            DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                ..
            }
        ));
    }
}
