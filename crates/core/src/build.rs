//! `DviCL` (Algorithm 1): building the AutoTree by divide-and-conquer, and
//! the combine steps `CombineCL` (Algorithm 4) and `CombineST`
//! (Algorithm 5).

use crate::arena::SubArena;
use crate::sub::{Division, Sub};
use crate::tree::{AutoTree, Node, NodeId, NodeKind, PoolRange, EMPTY, NO_PARENT};
use dvicl_canon::{try_canonical_form_with as ir_try_canonical_form_with, Config};
use dvicl_govern::{Budget, DviclError, Resource};
use dvicl_graph::{CanonForm, Coloring, FormRef, Graph, Perm, V};
use dvicl_obs::{self as obs, Counter};
use dvicl_refine::Refiner;
use rustc_hash::FxHashMap;

/// Options for the DviCL run. Resource limits are *not* options: they
/// are carried by the [`Budget`] passed to [`try_build_autotree`], one
/// global allowance covering the whole recursion and every leaf-labeler
/// call inside it.
#[derive(Clone, Debug)]
pub struct DviclOptions {
    /// The IR engine configuration used for non-singleton leaves — the `X`
    /// of the paper's `DviCL+X` (bliss-like, nauty-like or traces-like).
    pub leaf_config: Config,
    /// Apply `DivideS` (clique / complete-bipartite edge removal). Turning
    /// this off is the ablation benchmarked in `dvicl-bench`.
    pub use_divide_s: bool,
    /// Optional ceiling on the subgraph arena's pool bytes. When a carve
    /// would push the pools past it, the build fails with
    /// `BudgetExceeded { resource: Memory }` (arena rolled back) — this
    /// does **not** trigger the work-cap degradation path, because the
    /// whole-graph fallback needs *more* arena than the divided build.
    /// In a parallel build every worker arena gets the same ceiling
    /// (the ceiling bounds each arena, not their sum).
    pub arena_ceiling_bytes: Option<usize>,
    /// Worker threads for the build: `1` (the default) is the plain
    /// sequential recursion, `0` means "use the machine's available
    /// parallelism", and `N > 1` builds sibling subtrees concurrently
    /// on a work-stealing pool (`dvicl-pool`). The resulting AutoTree
    /// is byte-identical at every thread count — see DESIGN.md §14 for
    /// the deterministic-merge argument.
    pub threads: usize,
}

impl Default for DviclOptions {
    fn default() -> Self {
        DviclOptions {
            leaf_config: Config::bliss_like(),
            use_divide_s: true,
            arena_ceiling_bytes: None,
            threads: 1,
        }
    }
}

impl DviclOptions {
    /// The concrete worker count `threads` resolves to: `0` becomes the
    /// machine's available parallelism, anything else is taken as-is.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// Runs `DviCL` on the colored graph `(g, pi0)` and returns the AutoTree.
///
/// The input coloring is first refined to an equitable coloring by the
/// refinement function `R` (Algorithm 1, lines 1–2); every subgraph in the
/// recursion then uses the *projection* of that single coloring
/// (Theorem 6.1 shows projections stay equitable and orbit-compatible).
///
/// ```
/// use dvicl_graph::{named, Coloring};
/// use dvicl_core::{aut, build_autotree, DviclOptions};
/// // The paper's Fig. 1(a)/Fig. 4 example: 7 tree nodes, |Aut| = 48.
/// let g = named::fig1_example();
/// let tree = build_autotree(&g, &Coloring::unit(8), &DviclOptions::default());
/// assert_eq!(tree.stats().total_nodes, 7);
/// assert_eq!(aut::group_order(&tree).to_u64(), Some(48));
/// ```
pub fn build_autotree(g: &Graph, pi0: &Coloring, opts: &DviclOptions) -> AutoTree {
    assert_eq!(g.n(), pi0.n(), "graph/coloring size mismatch");
    try_build_autotree(g, pi0, opts, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("an unlimited build cannot exceed its budget")
}

/// Fallible variant of [`build_autotree`]: `budget` is one *global*
/// allowance covering the whole divide-and-conquer recursion, every
/// leaf-labeler invocation inside it, and the refinement loops those
/// run — not a per-leaf limit. Aborts with
/// [`DviclError::BudgetExceeded`] or [`DviclError::Cancelled`].
///
/// For a build that survives work-budget exhaustion by degrading to
/// whole-graph IR labeling, see [`build_autotree_resilient`].
pub fn try_build_autotree(
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    try_build_autotree_in(&mut Scratch::new(), g, pi0, opts, budget)
}

/// [`try_build_autotree`] against caller-owned [`Scratch`] — the entry
/// point `core::Session` reuses arenas and the CombineCL memo through.
pub(crate) fn try_build_autotree_in(
    scratch: &mut Scratch,
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    if g.n() != pi0.n() {
        return Err(DviclError::invalid(format!(
            "graph has {} vertices but the coloring covers {}",
            g.n(),
            pi0.n()
        )));
    }
    budget.check()?;
    scratch.refiner.set_kernel(opts.leaf_config.kernel);
    let pi = scratch.refiner.try_refine(g, pi0, budget)?.coloring;
    run_build(scratch, g, pi, opts, budget, false)
}

/// A built AutoTree together with how it was obtained.
pub struct BuildOutcome {
    /// The tree.
    pub tree: AutoTree,
    /// True when the divide-and-conquer build ran out of its *work*
    /// budget and the tree is the whole-graph IR fallback: a single
    /// leaf, still a correct canonical form, just computed without
    /// divide-and-conquer savings. Degraded and non-degraded
    /// certificates of the same graph are **not** comparable — compare
    /// like with like (see `try_are_isomorphic`).
    pub degraded: bool,
}

/// Budgeted build with graceful degradation: when the divide-and-conquer
/// recursion exhausts the budget's *work cap*, the graph is re-labeled
/// as one whole-graph IR leaf under the same deadline and cancel token
/// (but no work cap) instead of failing. Wall-clock exhaustion and
/// cancellation still abort — a deadline is a promise to the caller,
/// while a work cap is a heuristic on divide effectiveness.
pub fn build_autotree_resilient(
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<BuildOutcome, DviclError> {
    build_autotree_resilient_in(&mut Scratch::new(), g, pi0, opts, budget)
}

/// [`build_autotree_resilient`] against caller-owned [`Scratch`].
pub(crate) fn build_autotree_resilient_in(
    scratch: &mut Scratch,
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<BuildOutcome, DviclError> {
    match try_build_autotree_in(scratch, g, pi0, opts, budget) {
        Ok(tree) => Ok(BuildOutcome {
            tree,
            degraded: false,
        }),
        Err(DviclError::BudgetExceeded {
            resource: Resource::WorkUnits,
            ..
        }) => {
            let tree = build_autotree_whole_leaf_in(
                scratch,
                g,
                pi0,
                opts,
                &budget.without_work_limit(),
            )?;
            Ok(BuildOutcome {
                tree,
                degraded: true,
            })
        }
        Err(e) => Err(e),
    }
}

/// Builds the degraded-mode tree directly: no divide rules, the whole
/// graph labeled as one IR leaf. This is what
/// [`build_autotree_resilient`] falls back to; it is public so callers
/// that must compare certificates across runs (e.g. isomorphism checks
/// where only one side degraded) can force both sides into the same
/// labeling mode.
pub fn build_autotree_whole_leaf(
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    build_autotree_whole_leaf_in(&mut Scratch::new(), g, pi0, opts, budget)
}

/// [`build_autotree_whole_leaf`] against caller-owned [`Scratch`].
pub(crate) fn build_autotree_whole_leaf_in(
    scratch: &mut Scratch,
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    if g.n() != pi0.n() {
        return Err(DviclError::invalid(format!(
            "graph has {} vertices but the coloring covers {}",
            g.n(),
            pi0.n()
        )));
    }
    budget.check()?;
    scratch.refiner.set_kernel(opts.leaf_config.kernel);
    let pi = scratch.refiner.try_refine(g, pi0, budget)?.coloring;
    run_build(scratch, g, pi, opts, budget, true)
}

fn run_build(
    scratch: &mut Scratch,
    g: &Graph,
    pi: Coloring,
    opts: &DviclOptions,
    budget: &Budget,
    force_leaf: bool,
) -> Result<AutoTree, DviclError> {
    let _span = obs::span("core.build");
    // One build = one arena epoch: empty segments (buffers keep their
    // capacity from earlier builds) and fresh peak/reuse stats, so the
    // `sub_bytes_peak` / `arena_reuses` counters below stay per-build
    // even when one Scratch serves a whole session. The CombineCL memo
    // deliberately survives — its keys are pure functions of the leaf
    // input, so symmetric leaves *across graphs* hit it too.
    scratch.arena.reset();
    scratch.arena.set_ceiling_bytes(opts.arena_ceiling_bytes);
    if g.n() == 0 {
        let mut t = TreePools::default();
        t.nodes.push(Node {
            verts: EMPTY,
            fcolors: EMPTY,
            fedges: EMPTY,
            children: EMPTY,
            classes: EMPTY,
            gens: EMPTY,
            kind: NodeKind::NonSingletonLeaf,
            depth: 0,
            parent: NO_PARENT,
        });
        return Ok(t.into_tree(pi, 0));
    }
    // Pre-size the pools from the empirical shape of DviCL trees (about
    // one node per vertex, about 3n pooled vertex entries): a tree of
    // tens of thousands of nodes then fills them without doubling
    // spikes, which is where the naive growth schedule pays 1.5× the
    // final footprint in transient peak.
    let mut pools = TreePools::default();
    pools.nodes.reserve(g.n() + 16);
    pools.verts.reserve(3 * g.n());
    pools.labels.reserve(3 * g.n());
    pools.form_colors.reserve(2 * g.n());
    pools.form_edges.reserve(g.m() + g.n());
    pools.children.reserve(g.n() + 16);

    // A part can only be spawned at SPAWN_MIN_VERTS vertices, and parts
    // are vertex-disjoint subsets of `g` — so a graph below the
    // threshold can never produce a single pool job, and entering the
    // parallel scope would pay thread spawns for nothing. Corpus
    // workloads over small graphs (the batch service) hit this on every
    // build.
    let threads = if g.n() < SPAWN_MIN_VERTS {
        1
    } else {
        opts.effective_threads()
    };
    if threads <= 1 {
        let mut b = Builder {
            t: pools,
            pi: &pi,
            opts,
            budget,
            force_leaf,
            scratch,
            par: None,
        };
        let whole = b.scratch.arena.whole(g);
        let root = b.build(whole, 0, NO_PARENT)?;
        obs::add(Counter::SubBytesPeak, b.scratch.arena.bytes_peak() as u64);
        obs::add(Counter::ArenaReuses, b.scratch.arena.reuses());
        let t = b.t;
        return Ok(t.into_tree(pi, root));
    }

    // Parallel build: one work-stealing pool per build, the calling
    // thread as worker 0, and `threads - 1` helper workers each owning
    // its own Scratch (arena + CombineCL memo shard) — DESIGN.md §14.
    // The worker scratches live inside the leader's Scratch so a
    // Session amortizes their arena capacity and memo across builds.
    let mut workers = std::mem::take(&mut scratch.workers);
    if workers.len() < threads - 1 {
        workers.resize_with(threads - 1, Scratch::new);
    }
    for w in &mut workers {
        w.arena.reset();
        w.arena.set_ceiling_bytes(opts.arena_ceiling_bytes);
    }
    let result: Result<(TreePools, NodeId), DviclError> = dvicl_pool::scope(
        &mut workers[..threads - 1],
        |wid, pool, ws: &mut Scratch| worker_loop(wid, pool, ws, &pi, opts, budget),
        |pool| {
            let mut b = Builder {
                t: pools,
                pi: &pi,
                opts,
                budget,
                force_leaf,
                scratch,
                par: Some(ParHandle { pool, wid: 0 }),
            };
            let whole = b.scratch.arena.whole(g);
            let root = b.build(whole, 0, NO_PARENT)?;
            Ok((b.t, root))
        },
    );
    // Per-build arena accounting covers every arena the build touched:
    // the peaks are summed (an upper bound on concurrent residency,
    // and exactly the total when the build is sequential-equivalent).
    let mut peak = scratch.arena.bytes_peak();
    let mut reuses = scratch.arena.reuses();
    for w in &workers {
        peak += w.arena.bytes_peak();
        reuses += w.arena.reuses();
    }
    scratch.workers = workers;
    obs::add(Counter::SubBytesPeak, peak as u64);
    obs::add(Counter::ArenaReuses, reuses);
    let (t, root) = result?;
    Ok(t.into_tree(pi, root))
}

/// Appends `items` to `pool` and returns the `(start, len)` range.
fn push_range<T: Copy>(pool: &mut Vec<T>, items: &[T]) -> PoolRange {
    // dvicl-lint: allow(narrowing-cast) -- pool lengths are bounded by n·depth entries, far below u32::MAX for any graph this crate can hold (n <= V::MAX)
    let start = pool.len() as u32;
    pool.extend_from_slice(items);
    // dvicl-lint: allow(narrowing-cast) -- items is a per-node slice of at most n <= V::MAX entries
    (start, items.len() as u32)
}

/// `CombineCL` memo value: the IR labeling and its generators.
type ClEntry = (Perm, Vec<Perm>);

/// The reusable working state of a build, separable from the tree it
/// produces: the subgraph arena, the `CombineCL` memo, and the memo's
/// encode buffer. One-shot entry points ([`try_build_autotree`] and
/// friends) create a transient `Scratch` per call; `core::Session` owns
/// one across many builds so arena capacity and memoized leaf labelings
/// amortize over a whole corpus.
///
/// Soundness of cross-build memo reuse: a memo key encodes *exactly*
/// the input the IR engine sees (injectively — see `combine_cl`), so a
/// hit returns the same labeling the engine would recompute. The one
/// implicit key component is the engine configuration; the session
/// clears the memo when its `leaf_config` changes.
pub(crate) struct Scratch {
    /// Flat CSR storage for every working subgraph of a recursion.
    pub(crate) arena: SubArena,
    /// `CombineCL` memo (see `Builder::combine_cl`).
    pub(crate) cl_cache: FxHashMap<Vec<u8>, ClEntry>,
    /// Reused encode buffer for memo probes: allocation-free on hits.
    pub(crate) key_scratch: Vec<u8>,
    /// Per-worker refinement kernel state: the root refinement and every
    /// `CombineCL` leaf labeling of a build run through this refiner, so
    /// kernel scratch (partitions, bitset masks, radix buffers) is
    /// allocated once per worker and never shared — the same exclusive
    /// ownership discipline as the arena and memo shard beside it.
    pub(crate) refiner: Refiner,
    /// The helper workers' scratches for parallel builds (empty until a
    /// `threads > 1` build runs). Worker `w` (1-based) exclusively owns
    /// `workers[w - 1]` for the duration of a `dvicl_pool::scope`;
    /// between builds they rest here so a `core::Session` amortizes
    /// worker arena capacity and memo shards the same way it amortizes
    /// the leader's.
    pub(crate) workers: Vec<Scratch>,
}

impl Scratch {
    pub(crate) fn new() -> Scratch {
        Scratch {
            arena: SubArena::new(),
            cl_cache: FxHashMap::default(),
            key_scratch: Vec::new(),
            refiner: Refiner::new(),
            workers: Vec::new(),
        }
    }

    /// Drops every memoized `CombineCL` labeling (configuration change),
    /// in the worker shards too.
    pub(crate) fn clear_memo(&mut self) {
        self.cl_cache.clear();
        for w in &mut self.workers {
            w.clear_memo();
        }
    }

    /// Number of memoized `CombineCL` labelings currently held, summed
    /// over the leader and every worker shard.
    pub(crate) fn memo_len(&self) -> usize {
        self.cl_cache.len() + self.workers.iter().map(Scratch::memo_len).sum::<usize>()
    }
}

/// Appends `x` as a LEB128-style varint. Each field is self-delimiting,
/// so a sequence of varints is a prefix code: two encoded keys are equal
/// iff the encoded field sequences are equal.
// dvicl-lint: allow(budget-reachability) -- at most ten iterations for a u64; callers meter per tree node
fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        // dvicl-lint: allow(narrowing-cast) -- masked to seven bits first
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The eight node-payload pools of an AutoTree under construction —
/// [`AutoTree`] minus the coloring and root id. A sequential build fills
/// exactly one; a parallel build additionally fills one *fragment* per
/// spawned subtree and splices it back with [`TreePools::splice`]. The
/// splice target offsets are byte-identical to what the sequential
/// recursion would have produced, because a child subtree's appends to
/// every pool form one contiguous block between its parent's preorder
/// and postorder appends (see DESIGN.md §14).
#[derive(Debug, Default)]
struct TreePools {
    nodes: Vec<Node>,
    verts: Vec<V>,
    labels: Vec<V>,
    form_colors: Vec<(V, V)>,
    form_edges: Vec<(V, V)>,
    children: Vec<NodeId>,
    classes: Vec<(u32, u32)>,
    gen_ranges: Vec<PoolRange>,
    gen_pairs: Vec<(V, V)>,
}

fn pool_slice<T>(pool: &[T], r: PoolRange) -> &[T] {
    &pool[r.0 as usize..(r.0 + r.1) as usize]
}

impl TreePools {
    /// Global vertex ids of node `id` (every node kind sets `verts`).
    fn verts_of(&self, id: NodeId) -> &[V] {
        pool_slice(&self.verts, self.nodes[id].verts)
    }

    /// Canonical labels of node `id`, parallel to [`TreePools::verts_of`].
    fn labels_of(&self, id: NodeId) -> &[V] {
        pool_slice(&self.labels, self.nodes[id].verts)
    }

    /// The certificate of node `id` (what `CombineST` sorts by).
    fn form_of(&self, id: NodeId) -> FormRef<'_> {
        let n = &self.nodes[id];
        FormRef {
            colors: pool_slice(&self.form_colors, n.fcolors),
            edges: pool_slice(&self.form_edges, n.fedges),
        }
    }

    /// Seals the pools into an [`AutoTree`].
    fn into_tree(self, pi: Coloring, root: NodeId) -> AutoTree {
        AutoTree {
            pi,
            nodes: self.nodes,
            root,
            verts: self.verts,
            labels: self.labels,
            form_colors: self.form_colors,
            form_edges: self.form_edges,
            children: self.children,
            classes: self.classes,
            gen_ranges: self.gen_ranges,
            gen_pairs: self.gen_pairs,
        }
    }

    /// Appends a fragment built elsewhere as if its subtree had been
    /// built right here, right now, and returns the fragment root's new
    /// node id. Every pool range inside `frag` is rebased by the
    /// current pool tops; crucially, only the ranges a node's kind
    /// actually *writes* are rebased — the kind-unused ranges stay
    /// [`EMPTY`] `(0, 0)`, exactly as the sequential build leaves them,
    /// which is what makes the merged tree byte-identical rather than
    /// merely equivalent.
    fn splice(&mut self, frag: TreePools, parent: u32) -> NodeId {
        let node_base = self.nodes.len();
        // dvicl-lint: allow(narrowing-cast) -- pool lengths are bounded as in push_range: far below u32::MAX for any graph this crate can hold
        let verts_base = self.verts.len() as u32;
        // dvicl-lint: allow(narrowing-cast) -- bounded as verts_base above
        let fc_base = self.form_colors.len() as u32;
        // dvicl-lint: allow(narrowing-cast) -- bounded as verts_base above
        let fe_base = self.form_edges.len() as u32;
        // dvicl-lint: allow(narrowing-cast) -- bounded as verts_base above
        let ch_base = self.children.len() as u32;
        // dvicl-lint: allow(narrowing-cast) -- bounded as verts_base above
        let cls_base = self.classes.len() as u32;
        // dvicl-lint: allow(narrowing-cast) -- bounded as verts_base above
        let gr_base = self.gen_ranges.len() as u32;
        // dvicl-lint: allow(narrowing-cast) -- bounded as verts_base above
        let gp_base = self.gen_pairs.len() as u32;
        self.verts.extend_from_slice(&frag.verts);
        self.labels.extend_from_slice(&frag.labels);
        self.form_colors.extend_from_slice(&frag.form_colors);
        self.form_edges.extend_from_slice(&frag.form_edges);
        // Child-id pool entries are node ids; sibling-class runs index
        // positions *within* a node's child range and gen pairs are
        // global vertex ids, so neither needs rebasing.
        self.children.extend(frag.children.iter().map(|&c| c + node_base));
        self.classes.extend_from_slice(&frag.classes);
        self.gen_ranges
            .extend(frag.gen_ranges.iter().map(|&(s, l)| (s + gp_base, l)));
        self.gen_pairs.extend_from_slice(&frag.gen_pairs);
        for mut node in frag.nodes {
            node.verts.0 += verts_base;
            node.fcolors.0 += fc_base;
            match node.kind {
                NodeKind::SingletonLeaf => {}
                NodeKind::NonSingletonLeaf => {
                    node.fedges.0 += fe_base;
                    node.gens.0 += gr_base;
                }
                NodeKind::Internal => {
                    node.fedges.0 += fe_base;
                    node.children.0 += ch_base;
                    node.classes.0 += cls_base;
                }
            }
            node.parent = if node.parent == NO_PARENT {
                parent
            } else {
                // dvicl-lint: allow(narrowing-cast) -- node ids are bounded by the node count, far below u32::MAX
                node.parent + node_base as u32
            };
            self.nodes.push(node);
        }
        node_base
    }
}

/// One spawned unit of parallel work: build the subtree of `seed` at
/// `depth` into a fresh fragment, and deposit the result in `cell`.
struct Job {
    seed: crate::arena::SubSeed,
    depth: u32,
    cell: std::sync::Arc<JoinCell>,
}

/// The rendezvous for one spawned subtree: the builder deposits the
/// fragment (or the error that aborted it), the spawner takes it at the
/// deterministic merge point. `ready` is the lock-free fast path the
/// spawner polls from its help-wait loop.
struct JoinCell {
    ready: std::sync::atomic::AtomicBool,
    slot: std::sync::Mutex<Option<Result<TreePools, DviclError>>>,
}

impl JoinCell {
    fn new() -> JoinCell {
        JoinCell {
            ready: std::sync::atomic::AtomicBool::new(false),
            slot: std::sync::Mutex::new(None),
        }
    }

    fn complete(&self, r: Result<TreePools, DviclError>) {
        *self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
        self.ready.store(true, std::sync::atomic::Ordering::Release);
    }

    fn try_take(&self) -> Option<Result<TreePools, DviclError>> {
        if !self.ready.load(std::sync::atomic::Ordering::Acquire) {
            return None;
        }
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// A builder's connection to the parallel region, when there is one.
#[derive(Clone, Copy)]
struct ParHandle<'p> {
    pool: &'p dvicl_pool::Pool<Job>,
    /// The worker id this builder runs as — spawns push onto this
    /// worker's own deque (LIFO for itself, FIFO for thieves).
    wid: usize,
}

/// Children at least this large are built as spawned fragments; smaller
/// ones are built inline by the spawning worker. Purely a scheduling
/// threshold — the output is byte-identical whatever its value, so it
/// only trades task-spawn overhead against load-balancing granularity.
const SPAWN_MIN_VERTS: usize = 32;

/// The drain loop every helper worker runs for the lifetime of the
/// parallel region: acquire (own deque first, then steal), execute,
/// park when everything is empty, exit at shutdown.
fn worker_loop(
    wid: usize,
    pool: &dvicl_pool::Pool<Job>,
    ws: &mut Scratch,
    pi: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) {
    loop {
        match pool.try_acquire(wid) {
            Some(job) => run_job(wid, pool, ws, pi, opts, budget, job),
            None => {
                if !pool.park(wid) {
                    return;
                }
            }
        }
    }
}

/// Executes one [`Job`]: builds the seeded subtree into a fresh
/// fragment with this worker's own scratch, under the `pool.task` span,
/// and completes the job's cell. Infallible by design — errors travel
/// *inside* the cell, so a worker never unwinds (the panic-freedom half
/// of the DESIGN.md §14 argument).
fn run_job(
    wid: usize,
    pool: &dvicl_pool::Pool<Job>,
    ws: &mut Scratch,
    pi: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
    job: Job,
) {
    let _span = dvicl_pool::task_span();
    let t0 = std::time::Instant::now();
    let res = build_fragment(wid, pool, ws, pi, opts, budget, &job);
    pool.note_busy(wid, t0.elapsed().as_nanos() as u64);
    job.cell.complete(res);
}

/// Builds the subtree of one seed into a fresh fragment. The seed is
/// adopted into the executing worker's own arena as a root segment and
/// released again on every path out, so a worker arena's mark is
/// restored across any job — the no-leak half of the fault-sweep
/// invariant.
fn build_fragment(
    wid: usize,
    pool: &dvicl_pool::Pool<Job>,
    ws: &mut Scratch,
    pi: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
    job: &Job,
) -> Result<TreePools, DviclError> {
    let mark = ws.arena.mark();
    let out = (|| {
        // dvicl-lint: allow(arena-discipline) -- this `?` exits only the closure; `release(mark)` below runs on every path out of build_fragment
        let sub = ws.arena.try_adopt(&job.seed)?;
        let mut b = Builder {
            t: TreePools::default(),
            pi,
            opts,
            budget,
            force_leaf: false,
            scratch: ws,
            par: Some(ParHandle { pool, wid }),
        };
        // dvicl-lint: allow(arena-discipline) -- as above: the closure's early exit still reaches the unconditional release below
        b.build(sub, job.depth, NO_PARENT)?;
        Ok(b.t)
    })();
    ws.arena.release(mark);
    out
}

struct Builder<'a> {
    /// The tree (or fragment) under construction: node records plus the
    /// pooled per-node payloads they point into (tree.rs module docs).
    t: TreePools,
    /// The refined equitable root coloring `π` every subgraph projects.
    pi: &'a Coloring,
    opts: &'a DviclOptions,
    budget: &'a Budget,
    /// Degraded mode: skip every divide rule so the root becomes a
    /// single whole-graph IR leaf.
    force_leaf: bool,
    /// The borrowed working state: the stack-disciplined subgraph arena
    /// (a child's segment is released, and its buffer space reused, as
    /// soon as its subtree has combined) and the `CombineCL` memo —
    /// symmetric sibling leaves (equal local edges and global colors)
    /// share one IR labeling instead of re-searching. The memo key is an
    /// *injective* varint encoding of exactly the data the IR engine
    /// sees — `(n, colors, m, edges)` — so equal keys mean equal inputs
    /// (never a lossy hash), yet a leaf costs ~2 bytes per edge instead
    /// of a cloned `(Vec<V>, Vec<(V, V)>)`.
    scratch: &'a mut Scratch,
    /// `Some` inside a parallel region: big children are spawned as
    /// jobs, joined with a help-wait, and spliced in part order.
    par: Option<ParHandle<'a>>,
}

impl<'a> Builder<'a> {
    /// Procedure `cl` of Algorithm 1.
    fn build(&mut self, sub: Sub, depth: u32, parent: u32) -> Result<NodeId, DviclError> {
        dvicl_govern::fault::checkpoint("core.build_node")?;
        self.budget.spend(1)?;
        let id = self.t.nodes.len();
        let vrange = push_range(&mut self.t.verts, self.scratch.arena.verts(&sub));
        // Labels are written at combine time; keep the pool parallel.
        self.t.labels.resize(self.t.verts.len(), 0);
        self.t.nodes.push(Node {
            verts: vrange,
            fcolors: EMPTY,
            fedges: EMPTY,
            children: EMPTY,
            classes: EMPTY,
            gens: EMPTY,
            kind: NodeKind::Internal,
            depth,
            parent,
        });

        // Base case: a one-vertex subgraph (Algorithm 1 lines 7–8).
        if sub.n() == 1 {
            let color = self.pi.color_of(self.scratch.arena.verts(&sub)[0]);
            self.t.labels[vrange.0 as usize] = color;
            // The paper's singleton certificate C({v}) = (π(v), π(v)).
            let fcolors = push_range(&mut self.t.form_colors, &[(color, 1)]);
            let node = &mut self.t.nodes[id];
            node.kind = NodeKind::SingletonLeaf;
            node.fcolors = fcolors;
            return Ok(id);
        }

        // Divide phase: components (trivial divide), then DivideI, then
        // DivideS (Algorithm 1 lines 11–12). Degraded mode skips the
        // divide rules entirely — the node becomes a whole-graph IR leaf.
        let division = if self.force_leaf {
            None
        } else {
            let _span = obs::span("core.divide");
            self.scratch
                .arena
                .divide_components(&sub)
                .or_else(|| self.scratch.arena.divide_i(&sub, self.pi))
                .or_else(|| {
                    if self.opts.use_divide_s {
                        self.scratch.arena.divide_s(&sub, self.pi)
                    } else {
                        None
                    }
                })
        };

        match division {
            None => self.combine_cl(id, &sub)?,
            Some(d) => {
                // dvicl-lint: allow(narrowing-cast) -- id < node count <= n·depth, far below u32::MAX
                let parent_id = id as u32;
                let children = match self.par {
                    None => self.build_children_seq(&sub, &d, depth, parent_id)?,
                    Some(h) => self.build_children_par(h, &sub, &d, depth, parent_id)?,
                };
                self.combine_st(id, &sub, children);
            }
        }
        Ok(id)
    }

    /// The sequential child loop of Algorithm 1.
    ///
    /// Stack discipline: each child's arena segment is carved on top of
    /// the parent's, consumed by the recursive call, and released
    /// before the next sibling is carved — peak residency is one
    /// root-to-leaf chain, and siblings reuse the same buffer space.
    /// The release happens on the error path too, so an abort (budget
    /// trip, cancellation, injected fault) deep in the recursion
    /// unwinds the arena all the way back to the caller's mark.
    fn build_children_seq(
        &mut self,
        sub: &Sub,
        d: &Division,
        depth: u32,
        parent_id: u32,
    ) -> Result<Vec<NodeId>, DviclError> {
        let mut children: Vec<NodeId> = Vec::with_capacity(d.len());
        for i in 0..d.len() {
            let mark = self.scratch.arena.mark();
            let cid = dvicl_govern::fault::checkpoint("core.arena_carve")
                .and_then(|()| self.scratch.arena.try_induced_child(sub, d.part(i)))
                .and_then(|child| self.build(child, depth + 1, parent_id));
            self.scratch.arena.release(mark);
            children.push(cid?);
        }
        Ok(children)
    }

    /// The parallel child loop (DESIGN.md §14). Two passes:
    ///
    /// 1. Every part of at least [`SPAWN_MIN_VERTS`] vertices is carved,
    ///    exported as an owned [`crate::arena::SubSeed`] (the carve is
    ///    released immediately — the seed owns its data) and spawned as
    ///    a [`Job`] onto this worker's deque, where idle workers steal
    ///    it. Small parts stay inline.
    /// 2. The children are then *realized strictly in part order*: an
    ///    inline part is built directly into `self.t` exactly as the
    ///    sequential loop would; a spawned part is joined (help-wait:
    ///    while its cell is pending this worker executes other pool
    ///    jobs) and its fragment spliced into `self.t`. Since pass 2 is
    ///    the only thing that appends to `self.t`, and it walks parts in
    ///    order, every child block lands at the sequential offsets —
    ///    the deterministic merge that keeps forms byte-identical.
    ///
    /// Errors surface at the first failing part in part order, matching
    /// the sequential loop's early exit; later siblings may already be
    /// running on workers, and simply finish into cells nobody reads
    /// (the shared `Budget` makes them fail fast when the cause was
    /// exhaustion or cancellation).
    fn build_children_par(
        &mut self,
        h: ParHandle<'a>,
        sub: &Sub,
        d: &Division,
        depth: u32,
        parent_id: u32,
    ) -> Result<Vec<NodeId>, DviclError> {
        enum Pending {
            Inline,
            Spawned(std::sync::Arc<JoinCell>),
            Failed(DviclError),
        }
        let mut pending: Vec<Pending> = Vec::with_capacity(d.len());
        for i in 0..d.len() {
            let part = d.part(i);
            if part.len() < SPAWN_MIN_VERTS {
                pending.push(Pending::Inline);
                continue;
            }
            let mark = self.scratch.arena.mark();
            let seed = dvicl_govern::fault::checkpoint("core.arena_carve")
                .and_then(|()| self.scratch.arena.try_induced_child(sub, part))
                .map(|child| self.scratch.arena.export(&child));
            self.scratch.arena.release(mark);
            pending.push(match seed {
                Ok(seed) => {
                    let cell = std::sync::Arc::new(JoinCell::new());
                    let job = Job {
                        seed,
                        depth: depth + 1,
                        cell: std::sync::Arc::clone(&cell),
                    };
                    match h.pool.spawn(h.wid, job) {
                        Ok(()) => Pending::Spawned(cell),
                        Err(e) => Pending::Failed(e),
                    }
                }
                Err(e) => Pending::Failed(e),
            });
        }
        let mut children: Vec<NodeId> = Vec::with_capacity(d.len());
        for (i, p) in pending.into_iter().enumerate() {
            match p {
                Pending::Inline => {
                    let mark = self.scratch.arena.mark();
                    let cid = dvicl_govern::fault::checkpoint("core.arena_carve")
                        .and_then(|()| self.scratch.arena.try_induced_child(sub, d.part(i)))
                        .and_then(|child| self.build(child, depth + 1, parent_id));
                    self.scratch.arena.release(mark);
                    children.push(cid?);
                }
                Pending::Spawned(cell) => {
                    let frag = self.join(h, &cell)?;
                    children.push(self.t.splice(frag, parent_id));
                }
                Pending::Failed(e) => return Err(e),
            }
        }
        Ok(children)
    }

    /// Waits for a spawned subtree by *helping*: while the cell is
    /// pending, this worker executes other pool jobs (its own deque
    /// first, then steals). Deadlock-free: the job being awaited sits
    /// in this worker's own deque until someone (possibly this very
    /// loop) executes it, so progress never depends on an idle peer.
    fn join(&mut self, h: ParHandle<'a>, cell: &JoinCell) -> Result<TreePools, DviclError> {
        loop {
            if let Some(res) = cell.try_take() {
                return res;
            }
            match h.pool.try_acquire(h.wid) {
                Some(job) => {
                    run_job(h.wid, h.pool, self.scratch, self.pi, self.opts, self.budget, job);
                }
                None => std::thread::yield_now(),
            }
        }
    }

    /// `CombineCL` (Algorithm 4): label a non-singleton leaf with the IR
    /// engine, then re-rank the vertices of each (global) cell by the IR
    /// order so symmetric leaves elsewhere in the tree get equal labels
    /// (Lemma 6.7).
    fn combine_cl(&mut self, id: NodeId, sub: &Sub) -> Result<(), DviclError> {
        let _span = obs::span("core.leaf_ir");
        dvicl_govern::fault::checkpoint("core.leaf_ir")?;
        let (local_g, local_pi) = self.scratch.arena.to_local_graph(sub, self.pi);
        let colors: Vec<V> = self
            .scratch
            .arena
            .verts(sub)
            .iter()
            .map(|&v| self.pi.color_of(v))
            .collect();
        // Memo lookup: the IR result is a pure function of the local graph
        // and the projected coloring, and the colors vector determines the
        // projection, so (colors, edges) is a sound exact key (Lemma 6.7's
        // symmetric leaves hit this constantly). Encoding: varint(n), the
        // colors, varint(m), then the edges in CSR order with the source
        // delta-coded — injective (see `push_varint`), so key equality is
        // input equality and a collision cannot corrupt certificates.
        let mut key = std::mem::take(&mut self.scratch.key_scratch);
        key.clear();
        push_varint(&mut key, sub.n() as u64);
        for &c in &colors {
            push_varint(&mut key, c as u64);
        }
        push_varint(&mut key, sub.m() as u64);
        let mut prev_u = 0u64;
        for (u, v) in local_g.edges() {
            push_varint(&mut key, u as u64 - prev_u);
            push_varint(&mut key, v as u64);
            prev_u = u as u64;
        }
        let (labeling, generators) = match self.scratch.cl_cache.get(key.as_slice()) {
            Some((labeling, generators)) => {
                obs::bump(Counter::CacheClHits);
                (labeling.clone(), generators.clone())
            }
            None => {
                obs::bump(Counter::CacheClMisses);
                let res = ir_try_canonical_form_with(
                    &local_g,
                    &local_pi,
                    &self.opts.leaf_config,
                    self.budget,
                    &mut self.scratch.refiner,
                )?;
                self.scratch.cl_cache
                    .insert(key.clone(), (res.labeling.clone(), res.generators.clone()));
                (res.labeling, res.generators)
            }
        };
        self.scratch.key_scratch = key;
        let mut labels = vec![0 as V; sub.n()];
        for cell in self.scratch.arena.cells(sub, self.pi) {
            let mut members = cell.members;
            members.sort_unstable_by_key(|&i| labeling.apply(i));
            for (rank, &i) in members.iter().enumerate() {
                labels[i as usize] = cell.color + rank as V;
            }
        }
        let form = CanonForm::new(&local_g, &colors, &labels);
        let fcolors = push_range(&mut self.t.form_colors, &form.colors);
        let fedges = push_range(&mut self.t.form_edges, &form.edges);
        let verts = self.scratch.arena.verts(sub);
        // dvicl-lint: allow(narrowing-cast) -- gen_ranges grows by one entry per generator, far below u32::MAX
        let gstart = self.t.gen_ranges.len() as u32;
        for gen in &generators {
            // dvicl-lint: allow(narrowing-cast) -- gen_pairs holds at most n·|generators| entries, far below u32::MAX
            let pstart = self.t.gen_pairs.len() as u32;
            // dvicl-lint: allow(narrowing-cast) -- sub.n() <= g.n() <= V::MAX by Graph's construction invariant
            for i in 0..sub.n() as u32 {
                if gen.apply(i) != i {
                    self.t
                        .gen_pairs
                        .push((verts[i as usize], verts[gen.apply(i) as usize]));
                }
            }
            // dvicl-lint: allow(narrowing-cast) -- bounded as pstart above
            let plen = self.t.gen_pairs.len() as u32 - pstart;
            self.t.gen_ranges.push((pstart, plen));
        }
        let vrange = self.t.nodes[id].verts;
        self.t.labels[vrange.0 as usize..(vrange.0 + vrange.1) as usize].copy_from_slice(&labels);
        let node = &mut self.t.nodes[id];
        node.kind = NodeKind::NonSingletonLeaf;
        node.fcolors = fcolors;
        node.fedges = fedges;
        // dvicl-lint: allow(narrowing-cast) -- generator count per leaf is < n <= V::MAX
        node.gens = (gstart, generators.len() as u32);
        Ok(())
    }

    /// `CombineST` (Algorithm 5): sort children by certificate; order the
    /// vertices of each (global) cell by (child position, child label);
    /// the rank within the cell gives `γ_g(v) = π(v) + rank`.
    fn combine_st(&mut self, id: NodeId, sub: &Sub, mut children: Vec<NodeId>) {
        let _span = obs::span("core.combine");
        // Line 1: non-descending certificate order.
        children.sort_by(|&a, &b| self.t.form_of(a).cmp(&self.t.form_of(b)));
        // Runs of equal certificates = classes of symmetric siblings.
        let mut sibling_classes: Vec<(u32, u32)> = Vec::new();
        let mut start = 0;
        for i in 1..=children.len() {
            if i == children.len()
                || self.t.form_of(children[i]) != self.t.form_of(children[start])
            {
                // dvicl-lint: allow(narrowing-cast) -- class bounds index the child list, <= g.n() <= V::MAX
                sibling_classes.push((start as u32, i as u32));
                start = i;
            }
        }
        // (child position, in-child label) per global vertex.
        let mut key: FxHashMap<V, (u32, V)> = FxHashMap::default();
        for (pos, &c) in children.iter().enumerate() {
            let labels = self.t.labels_of(c);
            for (i, &v) in self.t.verts_of(c).iter().enumerate() {
                // dvicl-lint: allow(narrowing-cast) -- pos < children.len() <= g.n() <= V::MAX
                key.insert(v, (pos as u32, labels[i]));
            }
        }
        // Lines 2–5: rank within each cell of π_g.
        let verts = self.scratch.arena.verts(sub);
        let mut labels = vec![0 as V; sub.n()];
        for cell in self.scratch.arena.cells(sub, self.pi) {
            let mut members = cell.members;
            members.sort_unstable_by_key(|&i| key[&verts[i as usize]]);
            for (rank, &i) in members.iter().enumerate() {
                labels[i as usize] = cell.color + rank as V;
            }
        }
        // Line 6: C(g, π_g) = (g, π_g)^{γ_g} over the *induced* subgraph
        // (including any edges the divide rules deleted).
        let (local_g, _) = self.scratch.arena.to_local_graph(sub, self.pi);
        let colors: Vec<V> = verts.iter().map(|&v| self.pi.color_of(v)).collect();
        let form = CanonForm::new(&local_g, &colors, &labels);
        let fcolors = push_range(&mut self.t.form_colors, &form.colors);
        let fedges = push_range(&mut self.t.form_edges, &form.edges);
        let crange = push_range(&mut self.t.children, &children);
        let classes = push_range(&mut self.t.classes, &sibling_classes);
        let vrange = self.t.nodes[id].verts;
        self.t.labels[vrange.0 as usize..(vrange.0 + vrange.1) as usize].copy_from_slice(&labels);
        let node = &mut self.t.nodes[id];
        node.kind = NodeKind::Internal;
        node.children = crange;
        node.classes = classes;
        node.fcolors = fcolors;
        node.fedges = fedges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;
    use dvicl_graph::{named, Perm};

    fn tree_of(g: &Graph) -> AutoTree {
        build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
    }

    fn pseudo_random_perm(n: usize, salt: u64) -> Perm {
        let mut image: Vec<V> = (0..n as V).collect();
        let mut state = 0x9e3779b97f4a7c15u64 ^ salt ^ (n as u64) << 32;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            image.swap(i, j);
        }
        Perm::from_image(image).expect("shuffle is a bijection")
    }

    #[test]
    fn fig1_autotree_matches_paper_fig4() {
        // Fig. 4: the hub 7 is the axis; children are {7}, the 4-cycle
        // {0,1,2,3} (a non-singleton leaf, labeled by the IR engine), and
        // the triangle {4,5,6} (divided further into three singletons).
        let g = named::fig1_example();
        let t = tree_of(&g);
        let stats = t.stats();
        assert_eq!(stats.total_nodes, 7);
        assert_eq!(stats.singleton_leaves, 4);
        assert_eq!(stats.non_singleton_leaves, 1);
        assert_eq!(stats.avg_non_singleton_size, 4.0);
        assert_eq!(stats.depth, 2);
        // The triangle's three singleton children are one sibling class.
        let tri = t.deepest_containing(&[4, 5, 6]);
        assert_eq!(t.node(tri).children().len(), 3);
        assert_eq!(t.node(tri).sibling_classes(), vec![(0, 3)]);
    }

    #[test]
    fn root_labels_are_a_permutation() {
        for g in [
            named::fig1_example(),
            named::petersen(),
            named::rary_tree(2, 3),
            named::complete(5),
        ] {
            let t = tree_of(&g);
            let perm = t.canonical_labeling();
            assert_eq!(perm.len(), g.n());
        }
    }

    #[test]
    fn certificate_invariant_under_relabeling() {
        for (salt, g) in [
            named::fig1_example(),
            named::fig3_example(),
            named::petersen(),
            named::hypercube(3),
            named::rary_tree(3, 2),
            named::complete_bipartite(3, 4),
            named::star(6),
            named::frucht(),
            named::cycle(9),
            named::path(7),
        ]
        .into_iter()
        .enumerate()
        {
            let n = g.n();
            let t1 = tree_of(&g);
            for round in 0..3u64 {
                let gamma = pseudo_random_perm(n, salt as u64 * 17 + round);
                let t2 = tree_of(&g.permuted(&gamma));
                assert_eq!(
                    t1.canonical_form(),
                    t2.canonical_form(),
                    "salt {salt} round {round}"
                );
                // Theorem 6.6: isomorphic graphs get identical tree shapes.
                assert_eq!(t1.stats(), t2.stats());
            }
        }
    }

    #[test]
    fn certificate_separates_non_isomorphic() {
        let pairs = [
            (named::cycle(6), named::cycle(3).disjoint_union(&named::cycle(3))),
            (
                named::complete_bipartite(3, 3),
                Graph::from_edges(
                    6,
                    &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
                ),
            ),
            (named::path(5), named::star(4)),
        ];
        for (a, b) in pairs {
            assert_ne!(tree_of(&a).canonical_form(), tree_of(&b).canonical_form());
        }
    }

    #[test]
    fn labeling_produces_the_certificate() {
        for g in [named::fig1_example(), named::rary_tree(2, 3), named::petersen()] {
            let t = tree_of(&g);
            let perm = t.canonical_labeling();
            let direct = CanonForm::new(&g, t.pi.colors(), perm.as_slice());
            assert_eq!(direct.view(), t.canonical_form());
        }
    }

    #[test]
    fn regular_graph_is_one_leaf() {
        // Petersen: unit equitable coloring, no divide applies — the tree
        // is a single non-singleton leaf (the benchmark-graph situation of
        // Table 4).
        let t = tree_of(&named::petersen());
        let s = t.stats();
        assert_eq!(s.total_nodes, 1);
        assert_eq!(s.non_singleton_leaves, 1);
        assert_eq!(s.depth, 0);
        assert_eq!(t.node(t.root()).kind(), NodeKind::NonSingletonLeaf);
    }

    #[test]
    fn balanced_tree_divides_fully() {
        // A balanced binary tree divides into singletons only: no IR calls.
        let t = tree_of(&named::rary_tree(2, 3));
        let s = t.stats();
        assert_eq!(s.non_singleton_leaves, 0);
        assert_eq!(s.singleton_leaves, 15);
    }

    #[test]
    fn divide_s_ablation_still_correct() {
        let opts = DviclOptions {
            use_divide_s: false,
            ..DviclOptions::default()
        };
        let g = named::fig1_example();
        let t1 = build_autotree(&g, &Coloring::unit(8), &opts);
        let gamma = pseudo_random_perm(8, 99);
        let t2 = build_autotree(&g.permuted(&gamma), &Coloring::unit(8), &opts);
        assert_eq!(t1.canonical_form(), t2.canonical_form());
        // Without DivideS the triangle stays a non-singleton leaf.
        assert!(t1.stats().non_singleton_leaves >= 1);
    }

    #[test]
    fn respects_initial_colors() {
        // Two 3-cycles: with unit coloring they are symmetric; coloring one
        // cycle differently must break the symmetry (different
        // certificates).
        let g = named::cycle(3).disjoint_union(&named::cycle(3));
        let unit = Coloring::unit(6);
        let split = Coloring::from_cells(vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let t_unit = build_autotree(&g, &unit, &DviclOptions::default());
        let t_split = build_autotree(&g, &split, &DviclOptions::default());
        assert_ne!(t_unit.canonical_form(), t_split.canonical_form());
        // And the two cycles are one sibling class only under unit colors.
        assert_eq!(t_unit.node(t_unit.root()).sibling_classes().len(), 1);
        assert_eq!(t_split.node(t_split.root()).sibling_classes().len(), 2);
    }

    #[test]
    fn disconnected_graphs_work() {
        let g = named::petersen().disjoint_union(&named::petersen());
        let t = tree_of(&g);
        assert_eq!(t.node(t.root()).children().len(), 2);
        assert_eq!(t.node(t.root()).sibling_classes(), vec![(0, 2)]);
        let gamma = pseudo_random_perm(20, 5);
        let t2 = tree_of(&g.permuted(&gamma));
        assert_eq!(t.canonical_form(), t2.canonical_form());
    }

    #[test]
    fn resilient_build_degrades_under_tiny_work_budget() {
        let g = named::fig1_example();
        let pi = Coloring::unit(8);
        let opts = DviclOptions::default();
        // A 3-unit budget cannot cover root refinement plus the 7-node
        // divided tree: the strict build must fail...
        let strict = try_build_autotree(&g, &pi, &opts, &Budget::with_max_work(3));
        assert!(matches!(
            strict,
            Err(DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                ..
            })
        ));
        // ...and the resilient build must fall back to one whole-graph
        // IR leaf instead.
        let out = build_autotree_resilient(&g, &pi, &opts, &Budget::with_max_work(3))
            .expect("degradation absorbs work exhaustion");
        assert!(out.degraded);
        assert_eq!(out.tree.stats().total_nodes, 1);
        assert_eq!(out.tree.node(out.tree.root()).kind(), NodeKind::NonSingletonLeaf);
        // The degraded certificate is still relabeling-invariant.
        let gamma = pseudo_random_perm(8, 42);
        let out2 = build_autotree_resilient(
            &g.permuted(&gamma),
            &pi,
            &opts,
            &Budget::with_max_work(3),
        )
        .expect("degradation absorbs work exhaustion");
        assert!(out2.degraded);
        assert_eq!(out.tree.canonical_form(), out2.tree.canonical_form());
    }

    #[test]
    fn resilient_build_is_transparent_when_budget_suffices() {
        let g = named::fig1_example();
        let pi = Coloring::unit(8);
        let out = build_autotree_resilient(&g, &pi, &DviclOptions::default(), &Budget::unlimited())
            .expect("unlimited build succeeds");
        assert!(!out.degraded);
        assert_eq!(out.tree.stats().total_nodes, 7);
        assert_eq!(out.tree.canonical_form(), tree_of(&g).canonical_form());
    }

    #[test]
    fn resilient_build_propagates_deadline_exhaustion() {
        // Degradation is only for work caps: a passed deadline means the
        // caller's time promise is already broken, so the error surfaces.
        let g = named::petersen();
        let budget = Budget::with_deadline(std::time::Duration::from_nanos(1));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let r = build_autotree_resilient(&g, &Coloring::unit(10), &DviclOptions::default(), &budget);
        assert!(matches!(
            r,
            Err(DviclError::BudgetExceeded {
                resource: Resource::WallClock,
                ..
            })
        ));
    }

    /// Field-by-field pool equality: stronger than certificate equality,
    /// this asserts the parallel build's splices land every byte where
    /// the sequential recursion put it.
    fn assert_trees_identical(a: &AutoTree, b: &AutoTree) {
        assert_eq!(a.pi, b.pi);
        assert_eq!(a.root, b.root);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.verts, b.verts);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.form_colors, b.form_colors);
        assert_eq!(a.form_edges, b.form_edges);
        assert_eq!(a.children, b.children);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.gen_ranges, b.gen_ranges);
        assert_eq!(a.gen_pairs, b.gen_pairs);
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        // Graphs whose divisions have parts above and below the spawn
        // threshold, symmetric siblings (memo traffic), deep nesting,
        // and non-singleton leaves with generators.
        let graphs = [
            named::fig1_example(),
            named::petersen().disjoint_union(&named::petersen()),
            named::cycle(40)
                .disjoint_union(&named::cycle(48))
                .disjoint_union(&named::cycle(40))
                .disjoint_union(&named::star(5)),
            named::rary_tree(3, 4),
            named::hypercube(3).disjoint_union(&named::complete_bipartite(4, 9)),
        ];
        for (k, g) in graphs.into_iter().enumerate() {
            let pi = Coloring::unit(g.n());
            let seq = build_autotree(&g, &pi, &DviclOptions::default());
            for threads in [2, 4] {
                let par = build_autotree(
                    &g,
                    &pi,
                    &DviclOptions {
                        threads,
                        ..DviclOptions::default()
                    },
                );
                assert_trees_identical(&seq, &par);
                let _ = (k, threads);
            }
        }
    }

    #[test]
    fn parallel_build_spawns_onto_the_pool() {
        // Two 64-cycles: both components clear SPAWN_MIN_VERTS, so a
        // 4-thread build must push jobs through the pool.
        let g = named::cycle(64).disjoint_union(&named::cycle(64));
        let before = obs::snapshot();
        let t = build_autotree(
            &g,
            &Coloring::unit(g.n()),
            &DviclOptions {
                threads: 4,
                ..DviclOptions::default()
            },
        );
        let d = obs::snapshot().diff(&before);
        assert_eq!(t.node(t.root()).children().len(), 2);
        assert!(
            d.get(Counter::PoolTasks) >= 2,
            "expected spawned subtree jobs, saw {}",
            d.get(Counter::PoolTasks)
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let t0 = tree_of(&Graph::empty(0));
        assert_eq!(t0.len(), 1);
        let t1 = tree_of(&Graph::empty(1));
        assert_eq!(t1.stats().singleton_leaves, 1);
        let t2 = tree_of(&Graph::empty(3));
        // Three isolated same-color vertices: one class of three singleton
        // children.
        assert_eq!(t2.node(t2.root()).sibling_classes(), vec![(0, 3)]);
        let k2 = tree_of(&named::complete(2));
        assert_eq!(k2.stats().singleton_leaves, 2);
    }
}
