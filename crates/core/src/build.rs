//! `DviCL` (Algorithm 1): building the AutoTree by divide-and-conquer, and
//! the combine steps `CombineCL` (Algorithm 4) and `CombineST`
//! (Algorithm 5).

use crate::arena::SubArena;
use crate::sub::Sub;
use crate::tree::{AutoTree, Node, NodeId, NodeKind, PoolRange, EMPTY, NO_PARENT};
use dvicl_canon::{try_canonical_form as ir_try_canonical_form, Config};
use dvicl_govern::{Budget, DviclError, Resource};
use dvicl_graph::{CanonForm, Coloring, Graph, Perm, V};
use dvicl_obs::{self as obs, Counter};
use dvicl_refine::try_refine;
use rustc_hash::FxHashMap;

/// Options for the DviCL run. Resource limits are *not* options: they
/// are carried by the [`Budget`] passed to [`try_build_autotree`], one
/// global allowance covering the whole recursion and every leaf-labeler
/// call inside it.
#[derive(Clone, Debug)]
pub struct DviclOptions {
    /// The IR engine configuration used for non-singleton leaves — the `X`
    /// of the paper's `DviCL+X` (bliss-like, nauty-like or traces-like).
    pub leaf_config: Config,
    /// Apply `DivideS` (clique / complete-bipartite edge removal). Turning
    /// this off is the ablation benchmarked in `dvicl-bench`.
    pub use_divide_s: bool,
    /// Optional ceiling on the subgraph arena's pool bytes. When a carve
    /// would push the pools past it, the build fails with
    /// `BudgetExceeded { resource: Memory }` (arena rolled back) — this
    /// does **not** trigger the work-cap degradation path, because the
    /// whole-graph fallback needs *more* arena than the divided build.
    pub arena_ceiling_bytes: Option<usize>,
}

impl Default for DviclOptions {
    fn default() -> Self {
        DviclOptions {
            leaf_config: Config::bliss_like(),
            use_divide_s: true,
            arena_ceiling_bytes: None,
        }
    }
}

/// Runs `DviCL` on the colored graph `(g, pi0)` and returns the AutoTree.
///
/// The input coloring is first refined to an equitable coloring by the
/// refinement function `R` (Algorithm 1, lines 1–2); every subgraph in the
/// recursion then uses the *projection* of that single coloring
/// (Theorem 6.1 shows projections stay equitable and orbit-compatible).
///
/// ```
/// use dvicl_graph::{named, Coloring};
/// use dvicl_core::{aut, build_autotree, DviclOptions};
/// // The paper's Fig. 1(a)/Fig. 4 example: 7 tree nodes, |Aut| = 48.
/// let g = named::fig1_example();
/// let tree = build_autotree(&g, &Coloring::unit(8), &DviclOptions::default());
/// assert_eq!(tree.stats().total_nodes, 7);
/// assert_eq!(aut::group_order(&tree).to_u64(), Some(48));
/// ```
pub fn build_autotree(g: &Graph, pi0: &Coloring, opts: &DviclOptions) -> AutoTree {
    assert_eq!(g.n(), pi0.n(), "graph/coloring size mismatch");
    try_build_autotree(g, pi0, opts, &Budget::unlimited())
        // dvicl-lint: allow(panic-freedom) -- Budget::unlimited() never exhausts, so the Err arm is unreachable
        .expect("an unlimited build cannot exceed its budget")
}

/// Fallible variant of [`build_autotree`]: `budget` is one *global*
/// allowance covering the whole divide-and-conquer recursion, every
/// leaf-labeler invocation inside it, and the refinement loops those
/// run — not a per-leaf limit. Aborts with
/// [`DviclError::BudgetExceeded`] or [`DviclError::Cancelled`].
///
/// For a build that survives work-budget exhaustion by degrading to
/// whole-graph IR labeling, see [`build_autotree_resilient`].
pub fn try_build_autotree(
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    try_build_autotree_in(&mut Scratch::new(), g, pi0, opts, budget)
}

/// [`try_build_autotree`] against caller-owned [`Scratch`] — the entry
/// point `core::Session` reuses arenas and the CombineCL memo through.
pub(crate) fn try_build_autotree_in(
    scratch: &mut Scratch,
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    if g.n() != pi0.n() {
        return Err(DviclError::invalid(format!(
            "graph has {} vertices but the coloring covers {}",
            g.n(),
            pi0.n()
        )));
    }
    budget.check()?;
    let pi = try_refine(g, pi0, budget)?.coloring;
    run_build(scratch, g, pi, opts, budget, false)
}

/// A built AutoTree together with how it was obtained.
pub struct BuildOutcome {
    /// The tree.
    pub tree: AutoTree,
    /// True when the divide-and-conquer build ran out of its *work*
    /// budget and the tree is the whole-graph IR fallback: a single
    /// leaf, still a correct canonical form, just computed without
    /// divide-and-conquer savings. Degraded and non-degraded
    /// certificates of the same graph are **not** comparable — compare
    /// like with like (see `try_are_isomorphic`).
    pub degraded: bool,
}

/// Budgeted build with graceful degradation: when the divide-and-conquer
/// recursion exhausts the budget's *work cap*, the graph is re-labeled
/// as one whole-graph IR leaf under the same deadline and cancel token
/// (but no work cap) instead of failing. Wall-clock exhaustion and
/// cancellation still abort — a deadline is a promise to the caller,
/// while a work cap is a heuristic on divide effectiveness.
pub fn build_autotree_resilient(
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<BuildOutcome, DviclError> {
    build_autotree_resilient_in(&mut Scratch::new(), g, pi0, opts, budget)
}

/// [`build_autotree_resilient`] against caller-owned [`Scratch`].
pub(crate) fn build_autotree_resilient_in(
    scratch: &mut Scratch,
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<BuildOutcome, DviclError> {
    match try_build_autotree_in(scratch, g, pi0, opts, budget) {
        Ok(tree) => Ok(BuildOutcome {
            tree,
            degraded: false,
        }),
        Err(DviclError::BudgetExceeded {
            resource: Resource::WorkUnits,
            ..
        }) => {
            let tree = build_autotree_whole_leaf_in(
                scratch,
                g,
                pi0,
                opts,
                &budget.without_work_limit(),
            )?;
            Ok(BuildOutcome {
                tree,
                degraded: true,
            })
        }
        Err(e) => Err(e),
    }
}

/// Builds the degraded-mode tree directly: no divide rules, the whole
/// graph labeled as one IR leaf. This is what
/// [`build_autotree_resilient`] falls back to; it is public so callers
/// that must compare certificates across runs (e.g. isomorphism checks
/// where only one side degraded) can force both sides into the same
/// labeling mode.
pub fn build_autotree_whole_leaf(
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    build_autotree_whole_leaf_in(&mut Scratch::new(), g, pi0, opts, budget)
}

/// [`build_autotree_whole_leaf`] against caller-owned [`Scratch`].
pub(crate) fn build_autotree_whole_leaf_in(
    scratch: &mut Scratch,
    g: &Graph,
    pi0: &Coloring,
    opts: &DviclOptions,
    budget: &Budget,
) -> Result<AutoTree, DviclError> {
    if g.n() != pi0.n() {
        return Err(DviclError::invalid(format!(
            "graph has {} vertices but the coloring covers {}",
            g.n(),
            pi0.n()
        )));
    }
    budget.check()?;
    let pi = try_refine(g, pi0, budget)?.coloring;
    run_build(scratch, g, pi, opts, budget, true)
}

fn run_build(
    scratch: &mut Scratch,
    g: &Graph,
    pi: Coloring,
    opts: &DviclOptions,
    budget: &Budget,
    force_leaf: bool,
) -> Result<AutoTree, DviclError> {
    let _span = obs::span("core.build");
    // One build = one arena epoch: empty segments (buffers keep their
    // capacity from earlier builds) and fresh peak/reuse stats, so the
    // `sub_bytes_peak` / `arena_reuses` counters below stay per-build
    // even when one Scratch serves a whole session. The CombineCL memo
    // deliberately survives — its keys are pure functions of the leaf
    // input, so symmetric leaves *across graphs* hit it too.
    scratch.arena.reset();
    let mut b = Builder {
        t: AutoTree {
            pi,
            nodes: Vec::new(),
            root: 0,
            verts: Vec::new(),
            labels: Vec::new(),
            form_colors: Vec::new(),
            form_edges: Vec::new(),
            children: Vec::new(),
            classes: Vec::new(),
            gen_ranges: Vec::new(),
            gen_pairs: Vec::new(),
        },
        opts,
        budget,
        force_leaf,
        scratch,
    };
    b.scratch.arena.set_ceiling_bytes(opts.arena_ceiling_bytes);
    if g.n() == 0 {
        b.t.nodes.push(Node {
            verts: EMPTY,
            fcolors: EMPTY,
            fedges: EMPTY,
            children: EMPTY,
            classes: EMPTY,
            gens: EMPTY,
            kind: NodeKind::NonSingletonLeaf,
            depth: 0,
            parent: NO_PARENT,
        });
        return Ok(b.t);
    }
    // Pre-size the pools from the empirical shape of DviCL trees (about
    // one node per vertex, about 3n pooled vertex entries): a tree of
    // tens of thousands of nodes then fills them without doubling
    // spikes, which is where the naive growth schedule pays 1.5× the
    // final footprint in transient peak.
    b.t.nodes.reserve(g.n() + 16);
    b.t.verts.reserve(3 * g.n());
    b.t.labels.reserve(3 * g.n());
    b.t.form_colors.reserve(2 * g.n());
    b.t.form_edges.reserve(g.m() + g.n());
    b.t.children.reserve(g.n() + 16);
    let root = {
        let whole = b.scratch.arena.whole(g);
        b.build(whole, 0, NO_PARENT)?
    };
    obs::add(Counter::SubBytesPeak, b.scratch.arena.bytes_peak() as u64);
    obs::add(Counter::ArenaReuses, b.scratch.arena.reuses());
    b.t.root = root;
    Ok(b.t)
}

/// Appends `items` to `pool` and returns the `(start, len)` range.
fn push_range<T: Copy>(pool: &mut Vec<T>, items: &[T]) -> PoolRange {
    // dvicl-lint: allow(narrowing-cast) -- pool lengths are bounded by n·depth entries, far below u32::MAX for any graph this crate can hold (n <= V::MAX)
    let start = pool.len() as u32;
    pool.extend_from_slice(items);
    // dvicl-lint: allow(narrowing-cast) -- items is a per-node slice of at most n <= V::MAX entries
    (start, items.len() as u32)
}

/// `CombineCL` memo value: the IR labeling and its generators.
type ClEntry = (Perm, Vec<Perm>);

/// The reusable working state of a build, separable from the tree it
/// produces: the subgraph arena, the `CombineCL` memo, and the memo's
/// encode buffer. One-shot entry points ([`try_build_autotree`] and
/// friends) create a transient `Scratch` per call; `core::Session` owns
/// one across many builds so arena capacity and memoized leaf labelings
/// amortize over a whole corpus.
///
/// Soundness of cross-build memo reuse: a memo key encodes *exactly*
/// the input the IR engine sees (injectively — see `combine_cl`), so a
/// hit returns the same labeling the engine would recompute. The one
/// implicit key component is the engine configuration; the session
/// clears the memo when its `leaf_config` changes.
pub(crate) struct Scratch {
    /// Flat CSR storage for every working subgraph of a recursion.
    pub(crate) arena: SubArena,
    /// `CombineCL` memo (see `Builder::combine_cl`).
    pub(crate) cl_cache: FxHashMap<Vec<u8>, ClEntry>,
    /// Reused encode buffer for memo probes: allocation-free on hits.
    pub(crate) key_scratch: Vec<u8>,
}

impl Scratch {
    pub(crate) fn new() -> Scratch {
        Scratch {
            arena: SubArena::new(),
            cl_cache: FxHashMap::default(),
            key_scratch: Vec::new(),
        }
    }

    /// Drops every memoized `CombineCL` labeling (configuration change).
    pub(crate) fn clear_memo(&mut self) {
        self.cl_cache.clear();
    }

    /// Number of memoized `CombineCL` labelings currently held.
    pub(crate) fn memo_len(&self) -> usize {
        self.cl_cache.len()
    }
}

/// Appends `x` as a LEB128-style varint. Each field is self-delimiting,
/// so a sequence of varints is a prefix code: two encoded keys are equal
/// iff the encoded field sequences are equal.
// dvicl-lint: allow(budget-reachability) -- at most ten iterations for a u64; callers meter per tree node
fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        // dvicl-lint: allow(narrowing-cast) -- masked to seven bits first
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Builder<'a> {
    /// The tree under construction: node records plus the pooled
    /// per-node payloads they point into (tree.rs module docs).
    t: AutoTree,
    opts: &'a DviclOptions,
    budget: &'a Budget,
    /// Degraded mode: skip every divide rule so the root becomes a
    /// single whole-graph IR leaf.
    force_leaf: bool,
    /// The borrowed working state: the stack-disciplined subgraph arena
    /// (a child's segment is released, and its buffer space reused, as
    /// soon as its subtree has combined) and the `CombineCL` memo —
    /// symmetric sibling leaves (equal local edges and global colors)
    /// share one IR labeling instead of re-searching. The memo key is an
    /// *injective* varint encoding of exactly the data the IR engine
    /// sees — `(n, colors, m, edges)` — so equal keys mean equal inputs
    /// (never a lossy hash), yet a leaf costs ~2 bytes per edge instead
    /// of a cloned `(Vec<V>, Vec<(V, V)>)`.
    scratch: &'a mut Scratch,
}

impl<'a> Builder<'a> {
    /// Procedure `cl` of Algorithm 1.
    fn build(&mut self, sub: Sub, depth: u32, parent: u32) -> Result<NodeId, DviclError> {
        dvicl_govern::fault::checkpoint("core.build_node")?;
        self.budget.spend(1)?;
        let id = self.t.nodes.len();
        let vrange = push_range(&mut self.t.verts, self.scratch.arena.verts(&sub));
        // Labels are written at combine time; keep the pool parallel.
        self.t.labels.resize(self.t.verts.len(), 0);
        self.t.nodes.push(Node {
            verts: vrange,
            fcolors: EMPTY,
            fedges: EMPTY,
            children: EMPTY,
            classes: EMPTY,
            gens: EMPTY,
            kind: NodeKind::Internal,
            depth,
            parent,
        });

        // Base case: a one-vertex subgraph (Algorithm 1 lines 7–8).
        if sub.n() == 1 {
            let color = self.t.pi.color_of(self.scratch.arena.verts(&sub)[0]);
            self.t.labels[vrange.0 as usize] = color;
            // The paper's singleton certificate C({v}) = (π(v), π(v)).
            let fcolors = push_range(&mut self.t.form_colors, &[(color, 1)]);
            let node = &mut self.t.nodes[id];
            node.kind = NodeKind::SingletonLeaf;
            node.fcolors = fcolors;
            return Ok(id);
        }

        // Divide phase: components (trivial divide), then DivideI, then
        // DivideS (Algorithm 1 lines 11–12). Degraded mode skips the
        // divide rules entirely — the node becomes a whole-graph IR leaf.
        let division = if self.force_leaf {
            None
        } else {
            let _span = obs::span("core.divide");
            self.scratch
                .arena
                .divide_components(&sub)
                .or_else(|| self.scratch.arena.divide_i(&sub, &self.t.pi))
                .or_else(|| {
                    if self.opts.use_divide_s {
                        self.scratch.arena.divide_s(&sub, &self.t.pi)
                    } else {
                        None
                    }
                })
        };

        match division {
            None => self.combine_cl(id, &sub)?,
            Some(d) => {
                // Stack discipline: each child's arena segment is carved
                // on top of the parent's, consumed by the recursive call,
                // and released before the next sibling is carved — peak
                // residency is one root-to-leaf chain, and siblings reuse
                // the same buffer space. The release happens on the error
                // path too, so an abort (budget trip, cancellation,
                // injected fault) deep in the recursion unwinds the arena
                // all the way back to the caller's mark.
                let mut children: Vec<NodeId> = Vec::with_capacity(d.len());
                // dvicl-lint: allow(narrowing-cast) -- id < node count <= n·depth, far below u32::MAX
                let parent_id = id as u32;
                for i in 0..d.len() {
                    let mark = self.scratch.arena.mark();
                    let cid = dvicl_govern::fault::checkpoint("core.arena_carve")
                        .and_then(|()| self.scratch.arena.try_induced_child(&sub, d.part(i)))
                        .and_then(|child| self.build(child, depth + 1, parent_id));
                    self.scratch.arena.release(mark);
                    children.push(cid?);
                }
                self.combine_st(id, &sub, children);
            }
        }
        Ok(id)
    }

    /// `CombineCL` (Algorithm 4): label a non-singleton leaf with the IR
    /// engine, then re-rank the vertices of each (global) cell by the IR
    /// order so symmetric leaves elsewhere in the tree get equal labels
    /// (Lemma 6.7).
    fn combine_cl(&mut self, id: NodeId, sub: &Sub) -> Result<(), DviclError> {
        let _span = obs::span("core.leaf_ir");
        dvicl_govern::fault::checkpoint("core.leaf_ir")?;
        let (local_g, local_pi) = self.scratch.arena.to_local_graph(sub, &self.t.pi);
        let colors: Vec<V> = self
            .scratch
            .arena
            .verts(sub)
            .iter()
            .map(|&v| self.t.pi.color_of(v))
            .collect();
        // Memo lookup: the IR result is a pure function of the local graph
        // and the projected coloring, and the colors vector determines the
        // projection, so (colors, edges) is a sound exact key (Lemma 6.7's
        // symmetric leaves hit this constantly). Encoding: varint(n), the
        // colors, varint(m), then the edges in CSR order with the source
        // delta-coded — injective (see `push_varint`), so key equality is
        // input equality and a collision cannot corrupt certificates.
        let mut key = std::mem::take(&mut self.scratch.key_scratch);
        key.clear();
        push_varint(&mut key, sub.n() as u64);
        for &c in &colors {
            push_varint(&mut key, c as u64);
        }
        push_varint(&mut key, sub.m() as u64);
        let mut prev_u = 0u64;
        for (u, v) in local_g.edges() {
            push_varint(&mut key, u as u64 - prev_u);
            push_varint(&mut key, v as u64);
            prev_u = u as u64;
        }
        let (labeling, generators) = match self.scratch.cl_cache.get(key.as_slice()) {
            Some((labeling, generators)) => {
                obs::bump(Counter::CacheClHits);
                (labeling.clone(), generators.clone())
            }
            None => {
                obs::bump(Counter::CacheClMisses);
                let res =
                    ir_try_canonical_form(&local_g, &local_pi, &self.opts.leaf_config, self.budget)?;
                self.scratch.cl_cache
                    .insert(key.clone(), (res.labeling.clone(), res.generators.clone()));
                (res.labeling, res.generators)
            }
        };
        self.scratch.key_scratch = key;
        let mut labels = vec![0 as V; sub.n()];
        for cell in self.scratch.arena.cells(sub, &self.t.pi) {
            let mut members = cell.members;
            members.sort_unstable_by_key(|&i| labeling.apply(i));
            for (rank, &i) in members.iter().enumerate() {
                labels[i as usize] = cell.color + rank as V;
            }
        }
        let form = CanonForm::new(&local_g, &colors, &labels);
        let fcolors = push_range(&mut self.t.form_colors, &form.colors);
        let fedges = push_range(&mut self.t.form_edges, &form.edges);
        let verts = self.scratch.arena.verts(sub);
        // dvicl-lint: allow(narrowing-cast) -- gen_ranges grows by one entry per generator, far below u32::MAX
        let gstart = self.t.gen_ranges.len() as u32;
        for gen in &generators {
            // dvicl-lint: allow(narrowing-cast) -- gen_pairs holds at most n·|generators| entries, far below u32::MAX
            let pstart = self.t.gen_pairs.len() as u32;
            // dvicl-lint: allow(narrowing-cast) -- sub.n() <= g.n() <= V::MAX by Graph's construction invariant
            for i in 0..sub.n() as u32 {
                if gen.apply(i) != i {
                    self.t
                        .gen_pairs
                        .push((verts[i as usize], verts[gen.apply(i) as usize]));
                }
            }
            // dvicl-lint: allow(narrowing-cast) -- bounded as pstart above
            let plen = self.t.gen_pairs.len() as u32 - pstart;
            self.t.gen_ranges.push((pstart, plen));
        }
        let vrange = self.t.nodes[id].verts;
        self.t.labels[vrange.0 as usize..(vrange.0 + vrange.1) as usize].copy_from_slice(&labels);
        let node = &mut self.t.nodes[id];
        node.kind = NodeKind::NonSingletonLeaf;
        node.fcolors = fcolors;
        node.fedges = fedges;
        // dvicl-lint: allow(narrowing-cast) -- generator count per leaf is < n <= V::MAX
        node.gens = (gstart, generators.len() as u32);
        Ok(())
    }

    /// `CombineST` (Algorithm 5): sort children by certificate; order the
    /// vertices of each (global) cell by (child position, child label);
    /// the rank within the cell gives `γ_g(v) = π(v) + rank`.
    fn combine_st(&mut self, id: NodeId, sub: &Sub, mut children: Vec<NodeId>) {
        let _span = obs::span("core.combine");
        // Line 1: non-descending certificate order.
        children.sort_by(|&a, &b| self.t.node(a).form().cmp(&self.t.node(b).form()));
        // Runs of equal certificates = classes of symmetric siblings.
        let mut sibling_classes: Vec<(u32, u32)> = Vec::new();
        let mut start = 0;
        for i in 1..=children.len() {
            if i == children.len()
                || self.t.node(children[i]).form() != self.t.node(children[start]).form()
            {
                // dvicl-lint: allow(narrowing-cast) -- class bounds index the child list, <= g.n() <= V::MAX
                sibling_classes.push((start as u32, i as u32));
                start = i;
            }
        }
        // (child position, in-child label) per global vertex.
        let mut key: FxHashMap<V, (u32, V)> = FxHashMap::default();
        for (pos, &c) in children.iter().enumerate() {
            let child = self.t.node(c);
            for (i, &v) in child.verts().iter().enumerate() {
                // dvicl-lint: allow(narrowing-cast) -- pos < children.len() <= g.n() <= V::MAX
                key.insert(v, (pos as u32, child.labels()[i]));
            }
        }
        // Lines 2–5: rank within each cell of π_g.
        let verts = self.scratch.arena.verts(sub);
        let mut labels = vec![0 as V; sub.n()];
        for cell in self.scratch.arena.cells(sub, &self.t.pi) {
            let mut members = cell.members;
            members.sort_unstable_by_key(|&i| key[&verts[i as usize]]);
            for (rank, &i) in members.iter().enumerate() {
                labels[i as usize] = cell.color + rank as V;
            }
        }
        // Line 6: C(g, π_g) = (g, π_g)^{γ_g} over the *induced* subgraph
        // (including any edges the divide rules deleted).
        let (local_g, _) = self.scratch.arena.to_local_graph(sub, &self.t.pi);
        let colors: Vec<V> = verts.iter().map(|&v| self.t.pi.color_of(v)).collect();
        let form = CanonForm::new(&local_g, &colors, &labels);
        let fcolors = push_range(&mut self.t.form_colors, &form.colors);
        let fedges = push_range(&mut self.t.form_edges, &form.edges);
        let crange = push_range(&mut self.t.children, &children);
        let classes = push_range(&mut self.t.classes, &sibling_classes);
        let vrange = self.t.nodes[id].verts;
        self.t.labels[vrange.0 as usize..(vrange.0 + vrange.1) as usize].copy_from_slice(&labels);
        let node = &mut self.t.nodes[id];
        node.kind = NodeKind::Internal;
        node.children = crange;
        node.classes = classes;
        node.fcolors = fcolors;
        node.fedges = fedges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;
    use dvicl_graph::{named, Perm};

    fn tree_of(g: &Graph) -> AutoTree {
        build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
    }

    fn pseudo_random_perm(n: usize, salt: u64) -> Perm {
        let mut image: Vec<V> = (0..n as V).collect();
        let mut state = 0x9e3779b97f4a7c15u64 ^ salt ^ (n as u64) << 32;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            image.swap(i, j);
        }
        Perm::from_image(image).expect("shuffle is a bijection")
    }

    #[test]
    fn fig1_autotree_matches_paper_fig4() {
        // Fig. 4: the hub 7 is the axis; children are {7}, the 4-cycle
        // {0,1,2,3} (a non-singleton leaf, labeled by the IR engine), and
        // the triangle {4,5,6} (divided further into three singletons).
        let g = named::fig1_example();
        let t = tree_of(&g);
        let stats = t.stats();
        assert_eq!(stats.total_nodes, 7);
        assert_eq!(stats.singleton_leaves, 4);
        assert_eq!(stats.non_singleton_leaves, 1);
        assert_eq!(stats.avg_non_singleton_size, 4.0);
        assert_eq!(stats.depth, 2);
        // The triangle's three singleton children are one sibling class.
        let tri = t.deepest_containing(&[4, 5, 6]);
        assert_eq!(t.node(tri).children().len(), 3);
        assert_eq!(t.node(tri).sibling_classes(), vec![(0, 3)]);
    }

    #[test]
    fn root_labels_are_a_permutation() {
        for g in [
            named::fig1_example(),
            named::petersen(),
            named::rary_tree(2, 3),
            named::complete(5),
        ] {
            let t = tree_of(&g);
            let perm = t.canonical_labeling();
            assert_eq!(perm.len(), g.n());
        }
    }

    #[test]
    fn certificate_invariant_under_relabeling() {
        for (salt, g) in [
            named::fig1_example(),
            named::fig3_example(),
            named::petersen(),
            named::hypercube(3),
            named::rary_tree(3, 2),
            named::complete_bipartite(3, 4),
            named::star(6),
            named::frucht(),
            named::cycle(9),
            named::path(7),
        ]
        .into_iter()
        .enumerate()
        {
            let n = g.n();
            let t1 = tree_of(&g);
            for round in 0..3u64 {
                let gamma = pseudo_random_perm(n, salt as u64 * 17 + round);
                let t2 = tree_of(&g.permuted(&gamma));
                assert_eq!(
                    t1.canonical_form(),
                    t2.canonical_form(),
                    "salt {salt} round {round}"
                );
                // Theorem 6.6: isomorphic graphs get identical tree shapes.
                assert_eq!(t1.stats(), t2.stats());
            }
        }
    }

    #[test]
    fn certificate_separates_non_isomorphic() {
        let pairs = [
            (named::cycle(6), named::cycle(3).disjoint_union(&named::cycle(3))),
            (
                named::complete_bipartite(3, 3),
                Graph::from_edges(
                    6,
                    &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
                ),
            ),
            (named::path(5), named::star(4)),
        ];
        for (a, b) in pairs {
            assert_ne!(tree_of(&a).canonical_form(), tree_of(&b).canonical_form());
        }
    }

    #[test]
    fn labeling_produces_the_certificate() {
        for g in [named::fig1_example(), named::rary_tree(2, 3), named::petersen()] {
            let t = tree_of(&g);
            let perm = t.canonical_labeling();
            let direct = CanonForm::new(&g, t.pi.colors(), perm.as_slice());
            assert_eq!(direct.view(), t.canonical_form());
        }
    }

    #[test]
    fn regular_graph_is_one_leaf() {
        // Petersen: unit equitable coloring, no divide applies — the tree
        // is a single non-singleton leaf (the benchmark-graph situation of
        // Table 4).
        let t = tree_of(&named::petersen());
        let s = t.stats();
        assert_eq!(s.total_nodes, 1);
        assert_eq!(s.non_singleton_leaves, 1);
        assert_eq!(s.depth, 0);
        assert_eq!(t.node(t.root()).kind(), NodeKind::NonSingletonLeaf);
    }

    #[test]
    fn balanced_tree_divides_fully() {
        // A balanced binary tree divides into singletons only: no IR calls.
        let t = tree_of(&named::rary_tree(2, 3));
        let s = t.stats();
        assert_eq!(s.non_singleton_leaves, 0);
        assert_eq!(s.singleton_leaves, 15);
    }

    #[test]
    fn divide_s_ablation_still_correct() {
        let opts = DviclOptions {
            use_divide_s: false,
            ..DviclOptions::default()
        };
        let g = named::fig1_example();
        let t1 = build_autotree(&g, &Coloring::unit(8), &opts);
        let gamma = pseudo_random_perm(8, 99);
        let t2 = build_autotree(&g.permuted(&gamma), &Coloring::unit(8), &opts);
        assert_eq!(t1.canonical_form(), t2.canonical_form());
        // Without DivideS the triangle stays a non-singleton leaf.
        assert!(t1.stats().non_singleton_leaves >= 1);
    }

    #[test]
    fn respects_initial_colors() {
        // Two 3-cycles: with unit coloring they are symmetric; coloring one
        // cycle differently must break the symmetry (different
        // certificates).
        let g = named::cycle(3).disjoint_union(&named::cycle(3));
        let unit = Coloring::unit(6);
        let split = Coloring::from_cells(vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let t_unit = build_autotree(&g, &unit, &DviclOptions::default());
        let t_split = build_autotree(&g, &split, &DviclOptions::default());
        assert_ne!(t_unit.canonical_form(), t_split.canonical_form());
        // And the two cycles are one sibling class only under unit colors.
        assert_eq!(t_unit.node(t_unit.root()).sibling_classes().len(), 1);
        assert_eq!(t_split.node(t_split.root()).sibling_classes().len(), 2);
    }

    #[test]
    fn disconnected_graphs_work() {
        let g = named::petersen().disjoint_union(&named::petersen());
        let t = tree_of(&g);
        assert_eq!(t.node(t.root()).children().len(), 2);
        assert_eq!(t.node(t.root()).sibling_classes(), vec![(0, 2)]);
        let gamma = pseudo_random_perm(20, 5);
        let t2 = tree_of(&g.permuted(&gamma));
        assert_eq!(t.canonical_form(), t2.canonical_form());
    }

    #[test]
    fn resilient_build_degrades_under_tiny_work_budget() {
        let g = named::fig1_example();
        let pi = Coloring::unit(8);
        let opts = DviclOptions::default();
        // A 3-unit budget cannot cover root refinement plus the 7-node
        // divided tree: the strict build must fail...
        let strict = try_build_autotree(&g, &pi, &opts, &Budget::with_max_work(3));
        assert!(matches!(
            strict,
            Err(DviclError::BudgetExceeded {
                resource: Resource::WorkUnits,
                ..
            })
        ));
        // ...and the resilient build must fall back to one whole-graph
        // IR leaf instead.
        let out = build_autotree_resilient(&g, &pi, &opts, &Budget::with_max_work(3))
            .expect("degradation absorbs work exhaustion");
        assert!(out.degraded);
        assert_eq!(out.tree.stats().total_nodes, 1);
        assert_eq!(out.tree.node(out.tree.root()).kind(), NodeKind::NonSingletonLeaf);
        // The degraded certificate is still relabeling-invariant.
        let gamma = pseudo_random_perm(8, 42);
        let out2 = build_autotree_resilient(
            &g.permuted(&gamma),
            &pi,
            &opts,
            &Budget::with_max_work(3),
        )
        .expect("degradation absorbs work exhaustion");
        assert!(out2.degraded);
        assert_eq!(out.tree.canonical_form(), out2.tree.canonical_form());
    }

    #[test]
    fn resilient_build_is_transparent_when_budget_suffices() {
        let g = named::fig1_example();
        let pi = Coloring::unit(8);
        let out = build_autotree_resilient(&g, &pi, &DviclOptions::default(), &Budget::unlimited())
            .expect("unlimited build succeeds");
        assert!(!out.degraded);
        assert_eq!(out.tree.stats().total_nodes, 7);
        assert_eq!(out.tree.canonical_form(), tree_of(&g).canonical_form());
    }

    #[test]
    fn resilient_build_propagates_deadline_exhaustion() {
        // Degradation is only for work caps: a passed deadline means the
        // caller's time promise is already broken, so the error surfaces.
        let g = named::petersen();
        let budget = Budget::with_deadline(std::time::Duration::from_nanos(1));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let r = build_autotree_resilient(&g, &Coloring::unit(10), &DviclOptions::default(), &budget);
        assert!(matches!(
            r,
            Err(DviclError::BudgetExceeded {
                resource: Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let t0 = tree_of(&Graph::empty(0));
        assert_eq!(t0.len(), 1);
        let t1 = tree_of(&Graph::empty(1));
        assert_eq!(t1.stats().singleton_leaves, 1);
        let t2 = tree_of(&Graph::empty(3));
        // Three isolated same-color vertices: one class of three singleton
        // children.
        assert_eq!(t2.node(t2.root()).sibling_classes(), vec![(0, 3)]);
        let k2 = tree_of(&named::complete(2));
        assert_eq!(k2.stats().singleton_leaves, 2);
    }
}
