//! Explicit isomorphism extraction: not just *whether* two graphs are
//! isomorphic (certificate equality) but a concrete vertex bijection
//! realizing the isomorphism — composed from the two canonical labelings
//! (`γ₁ ∘ γ₂⁻¹`), the standard use of a canonical form the paper notes for
//! database retrieval.

use crate::build::{
    build_autotree, build_autotree_resilient, build_autotree_whole_leaf, BuildOutcome,
    DviclOptions,
};
use dvicl_govern::{Budget, DviclError};
use dvicl_graph::{Coloring, Graph, Perm};

/// Finds an isomorphism `γ` with `g1^γ = g2`, or `None` if the graphs are
/// not isomorphic. Unit colorings.
pub fn find_isomorphism(g1: &Graph, g2: &Graph) -> Option<Perm> {
    find_isomorphism_colored(g1, &Coloring::unit(g1.n()), g2, &Coloring::unit(g2.n()))
}

/// Colored variant: the returned `γ` additionally maps each cell of `pi1`
/// onto the equally colored cell of `pi2`.
pub fn find_isomorphism_colored(
    g1: &Graph,
    pi1: &Coloring,
    g2: &Graph,
    pi2: &Coloring,
) -> Option<Perm> {
    if g1.n() != g2.n() || g1.m() != g2.m() {
        return None;
    }
    let opts = DviclOptions::default();
    let t1 = build_autotree(g1, pi1, &opts);
    let t2 = build_autotree(g2, pi2, &opts);
    if t1.canonical_form() != t2.canonical_form() {
        return None;
    }
    // λ₁ maps g1 onto the canonical graph, λ₂ maps g2 onto the same one:
    // γ = λ₁ ∘ λ₂⁻¹ maps g1 onto g2.
    let gamma = t1.canonical_labeling().then(&t2.canonical_labeling().inverse());
    debug_assert_eq!(g1.permuted(&gamma), *g2, "composed labeling must realize the isomorphism");
    Some(gamma)
}

/// The result of a budgeted isomorphism extraction: the mapping (if the
/// graphs are isomorphic) plus whether the answer came from degraded
/// (whole-graph fallback) builds — callers that surface degradation to
/// users (the CLI's stderr marker) need the flag, not just the mapping.
pub struct IsoOutcome {
    /// An isomorphism `γ` with `g1^γ = g2`, or `None` if the graphs are
    /// not isomorphic.
    pub mapping: Option<Perm>,
    /// True when a work-cap exhaustion forced whole-graph IR labeling
    /// on both sides. The answer is still exact.
    pub degraded: bool,
}

/// Budgeted [`find_isomorphism`] with graceful degradation (see
/// [`crate::try_are_isomorphic`]): a work-cap exhaustion degrades both
/// sides to whole-graph IR labeling instead of failing, so the mapping —
/// composed from two labelings produced in the *same* mode — stays valid.
pub fn try_find_isomorphism(
    g1: &Graph,
    g2: &Graph,
    budget: &Budget,
) -> Result<Option<Perm>, DviclError> {
    Ok(try_find_isomorphism_outcome(g1, g2, budget)?.mapping)
}

/// [`try_find_isomorphism`] with the degradation flag exposed.
pub fn try_find_isomorphism_outcome(
    g1: &Graph,
    g2: &Graph,
    budget: &Budget,
) -> Result<IsoOutcome, DviclError> {
    try_find_isomorphism_colored_outcome(
        g1,
        &Coloring::unit(g1.n()),
        g2,
        &Coloring::unit(g2.n()),
        budget,
    )
}

/// Budgeted [`find_isomorphism_colored`].
pub fn try_find_isomorphism_colored(
    g1: &Graph,
    pi1: &Coloring,
    g2: &Graph,
    pi2: &Coloring,
    budget: &Budget,
) -> Result<Option<Perm>, DviclError> {
    Ok(try_find_isomorphism_colored_outcome(g1, pi1, g2, pi2, budget)?.mapping)
}

/// [`try_find_isomorphism_colored`] with the degradation flag exposed.
pub fn try_find_isomorphism_colored_outcome(
    g1: &Graph,
    pi1: &Coloring,
    g2: &Graph,
    pi2: &Coloring,
    budget: &Budget,
) -> Result<IsoOutcome, DviclError> {
    if g1.n() != g2.n() || g1.m() != g2.m() {
        return Ok(IsoOutcome {
            mapping: None,
            degraded: false,
        });
    }
    let opts = DviclOptions::default();
    let mut t1 = build_autotree_resilient(g1, pi1, &opts, budget)?;
    let mut t2 = build_autotree_resilient(g2, pi2, &opts, budget)?;
    if t1.degraded != t2.degraded {
        // Certificates from a divided tree and a whole-graph leaf are not
        // comparable; rebuild the non-degraded side in degraded mode.
        let relaxed = budget.without_work_limit();
        if t1.degraded {
            t2 = BuildOutcome {
                tree: build_autotree_whole_leaf(g2, pi2, &opts, &relaxed)?,
                degraded: true,
            };
        } else {
            t1 = BuildOutcome {
                tree: build_autotree_whole_leaf(g1, pi1, &opts, &relaxed)?,
                degraded: true,
            };
        }
    }
    let degraded = t1.degraded;
    if t1.tree.canonical_form() != t2.tree.canonical_form() {
        return Ok(IsoOutcome {
            mapping: None,
            degraded,
        });
    }
    let gamma = t1
        .tree
        .canonical_labeling()
        .then(&t2.tree.canonical_labeling().inverse());
    debug_assert_eq!(g1.permuted(&gamma), *g2, "composed labeling must realize the isomorphism");
    Ok(IsoOutcome {
        mapping: Some(gamma),
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_graph::named;

    #[test]
    fn recovers_a_valid_mapping() {
        for g in [
            named::petersen(),
            named::fig1_example(),
            named::rary_tree(2, 3),
            named::frucht(),
        ] {
            let gamma = Perm::from_cycles(g.n(), &[&[0, (g.n() - 1) as u32], &[1, 2]]).unwrap();
            let h = g.permuted(&gamma);
            let found = find_isomorphism(&g, &h).expect("isomorphic by construction");
            assert_eq!(g.permuted(&found), h);
        }
    }

    #[test]
    fn rejects_non_isomorphic() {
        assert!(find_isomorphism(&named::cycle(6), &named::complete_bipartite(3, 3)).is_none());
        assert!(find_isomorphism(
            &named::cycle(6),
            &named::cycle(3).disjoint_union(&named::cycle(3))
        )
        .is_none());
        assert!(find_isomorphism(&named::cycle(6), &named::cycle(7)).is_none());
    }

    #[test]
    fn respects_colors() {
        let g = named::path(3); // 0-1-2
        let pin_end = Coloring::from_cells(vec![vec![1, 2], vec![0]]).unwrap();
        let pin_other_end = Coloring::from_cells(vec![vec![0, 1], vec![2]]).unwrap();
        let pin_mid = Coloring::from_cells(vec![vec![0, 2], vec![1]]).unwrap();
        let gamma = find_isomorphism_colored(&g, &pin_end, &g, &pin_other_end)
            .expect("ends are exchangeable");
        assert_eq!(gamma.apply(0), 2); // the pinned end must map to the pinned end
        assert!(find_isomorphism_colored(&g, &pin_end, &g, &pin_mid).is_none());
    }

    #[test]
    fn degraded_mapping_is_still_an_isomorphism() {
        // Under a work budget far too small for the divide-and-conquer
        // build, the extracted mapping must still realize g1 ≅ g2.
        let g = named::petersen();
        let gamma = Perm::from_cycles(10, &[&[0, 7], &[2, 4, 9]]).unwrap();
        let h = g.permuted(&gamma);
        let tight = Budget::with_max_work(2);
        let found = try_find_isomorphism(&g, &h, &tight)
            .expect("work exhaustion must degrade, not fail")
            .expect("isomorphic by construction");
        assert_eq!(g.permuted(&found), h);
        // A non-isomorphic pair with the same vertex and edge counts (the
        // Möbius ladder M5 is 3-regular on 10 vertices like Petersen, but
        // has girth 4) still comes back negative when degraded.
        let ladder = dvicl_graph::Graph::from_edges(
            10,
            &[
                (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 0),
                (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
            ],
        );
        assert_eq!(
            try_find_isomorphism(&g, &ladder, &Budget::with_max_work(2)).unwrap(),
            None
        );
    }

    #[test]
    fn outcome_exposes_the_degradation_flag() {
        let g = named::petersen();
        let h = g.permuted(&Perm::from_cycles(10, &[&[0, 7]]).unwrap());
        let out = try_find_isomorphism_outcome(&g, &h, &Budget::with_max_work(2)).unwrap();
        assert!(out.degraded);
        assert!(out.mapping.is_some());
        let out = try_find_isomorphism_outcome(&g, &h, &Budget::unlimited()).unwrap();
        assert!(!out.degraded);
        // A size mismatch is answered without building anything.
        let out = try_find_isomorphism_outcome(&g, &named::cycle(5), &Budget::unlimited()).unwrap();
        assert!(!out.degraded);
        assert!(out.mapping.is_none());
    }

    #[test]
    fn rigid_mapping_is_unique() {
        let g = named::frucht();
        let gamma = Perm::from_cycles(12, &[&[0, 5], &[3, 8, 11]]).unwrap();
        let h = g.permuted(&gamma);
        // A rigid graph has exactly one isomorphism: the found mapping must
        // be γ itself.
        assert_eq!(find_isomorphism(&g, &h).unwrap(), gamma);
    }
}

/// Isomorphism test via the paper's Theorem 6.9 construction: build the
/// auxiliary graph containing `g1`, `g2` and one universal vertex `u`
/// adjacent to everything; `g1 ≅ g2` iff the AutoTree of the auxiliary
/// graph makes the two sides symmetric siblings (equal certificates under
/// the root).
///
/// [`find_isomorphism`] (two independent canonical forms) is the practical
/// API; this function exists to exercise the theorem's construction and is
/// tested to agree with it.
pub fn are_isomorphic_joint(g1: &Graph, g2: &Graph) -> bool {
    if g1.n() != g2.n() || g1.m() != g2.m() {
        return false;
    }
    let n = g1.n();
    if n == 0 {
        return true;
    }
    // dvicl-lint: allow(narrowing-cast) -- n = g1.n() <= V::MAX by Graph's construction invariant
    let shift = n as u32;
    let u = 2 * shift;
    let mut edges: Vec<(u32, u32)> = g1.edges().collect();
    edges.extend(g2.edges().map(|(a, b)| (a + shift, b + shift)));
    for v in 0..u {
        edges.push((v, u));
    }
    let joint = Graph::from_edges(2 * n + 1, &edges);
    let tree = build_autotree(&joint, &Coloring::unit(joint.n()), &DviclOptions::default());
    // The universal vertex is the axis; the root's children split into
    // {u} plus the connected pieces of g1 and g2. g1 ≅ g2 iff every
    // child-class is evenly split between the two sides — equivalently,
    // iff side 0's multiset of child certificates equals side 1's.
    let root = tree.node(tree.root());
    let mut side1: Vec<dvicl_graph::FormRef> = Vec::new();
    let mut side2: Vec<dvicl_graph::FormRef> = Vec::new();
    for &c in root.children() {
        let node = tree.node(c);
        if node.verts() == [u] {
            continue;
        }
        if node.verts().iter().all(|&v| v < shift) {
            side1.push(node.form());
        } else if node.verts().iter().all(|&v| v >= shift && v < u) {
            side2.push(node.form());
        } else {
            // dvicl-lint: allow(panic-freedom) -- root children refine connected components, and every component of joint minus the axis lies wholly on one side
            unreachable!("a root child mixes the two sides");
        }
    }
    side1.sort();
    side2.sort();
    side1 == side2
}

#[cfg(test)]
mod joint_tests {
    use super::*;
    use dvicl_graph::named;

    #[test]
    fn joint_construction_agrees_with_certificates() {
        let cases: Vec<(Graph, Graph, bool)> = vec![
            (named::petersen(), named::petersen(), true),
            (
                named::cycle(6),
                named::cycle(3).disjoint_union(&named::cycle(3)),
                false,
            ),
            (
                named::complete_bipartite(3, 3),
                Graph::from_edges(
                    6,
                    &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
                ),
                false,
            ),
            (named::path(5), named::path(5), true),
            (named::frucht(), named::frucht(), true),
        ];
        for (a, b, expected) in cases {
            assert_eq!(are_isomorphic_joint(&a, &b), expected);
            assert_eq!(
                are_isomorphic_joint(&a, &b),
                find_isomorphism(&a, &b).is_some()
            );
        }
    }

    #[test]
    fn joint_construction_on_shuffles() {
        let g = named::fig3_example();
        let gamma =
            Perm::from_cycles(g.n(), &[&[0, 13, 7], &[2, 6, 4], &[1, 11]]).unwrap();
        assert!(are_isomorphic_joint(&g, &g.permuted(&gamma)));
    }
}
