//! Differential pin of the refactor-sensitive outputs: canonical forms,
//! canonical labelings and automorphism generator sets for the full
//! named-graph corpus, hashed and compared against values recorded from
//! the pre-arena (nested-vec `Sub`) implementation.
//!
//! The arena-backed storage refactor must be behavior-preserving: every
//! one of these 64-bit digests covers the *entire* byte content of the
//! respective output (color runs, edge lists, permutation images), so any
//! deviation — reordered generators, a flipped edge, a shifted label —
//! flips the digest.
//!
//! Regenerating (only legitimate after an intentional algorithm change):
//! `DVICL_REGEN_GOLDENS=1 cargo test -p dvicl-core --test differential -- --nocapture`

use dvicl_core::{aut, build_autotree, DviclOptions};
use dvicl_graph::{named, Coloring, Graph};

/// splitmix64 finalizer — the same mixer the workspace uses for traces.
fn mix(h: u64, x: u64) -> u64 {
    let mut z = h ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One digest over everything the refactor must preserve for `(g, unit)`:
/// the canonical form (color runs + relabeled edge list), the canonical
/// labeling, and the ordered automorphism generator set extracted from
/// the AutoTree.
fn digest(g: &Graph) -> u64 {
    let tree = build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default());
    let mut h = 0xd1ff_e7e5_7a11_0000u64;
    let form = tree.canonical_form();
    for &(c, k) in form.colors {
        h = mix(h, (c as u64) << 32 | k as u64);
    }
    h = mix(h, 0x0ed6_0000 ^ form.edges.len() as u64);
    for &(u, v) in form.edges {
        h = mix(h, (u as u64) << 32 | v as u64);
    }
    let lambda = tree.canonical_labeling();
    for i in 0..lambda.len() {
        // dvicl-lint: allow(narrowing-cast) -- i < n <= V::MAX
        h = mix(h, lambda.apply(i as u32) as u64);
    }
    let gens = aut::generators(&tree);
    h = mix(h, 0x6e25_0000 ^ gens.len() as u64);
    for gen in &gens {
        for i in 0..gen.len() {
            // dvicl-lint: allow(narrowing-cast) -- i < n <= V::MAX
            h = mix(h, gen.apply(i as u32) as u64);
        }
    }
    h
}

fn corpus() -> Vec<(&'static str, Graph)> {
    vec![
        ("fig1_example", named::fig1_example()),
        ("fig3_example", named::fig3_example()),
        ("complete_6", named::complete(6)),
        ("cycle_9", named::cycle(9)),
        ("path_7", named::path(7)),
        ("star_6", named::star(6)),
        ("complete_bipartite_3_4", named::complete_bipartite(3, 4)),
        ("petersen", named::petersen()),
        ("hypercube_3", named::hypercube(3)),
        ("hypercube_4", named::hypercube(4)),
        ("frucht", named::frucht()),
        ("circulant_13_1_5", named::circulant(13, &[1, 5])),
        ("torus2_3_4", named::torus2(3, 4)),
        ("rary_tree_2_3", named::rary_tree(2, 3)),
        ("rary_tree_3_2", named::rary_tree(3, 2)),
        ("johnson_5_2", named::johnson(5, 2)),
        ("paley_13", named::paley(13)),
        ("two_triangles", named::cycle(3).disjoint_union(&named::cycle(3))),
        ("two_petersens", named::petersen().disjoint_union(&named::petersen())),
        ("kneser_6_2", named::kneser(6, 2)),
    ]
}

/// Digests recorded from the pre-refactor (nested-vec `Sub`)
/// implementation. The arena refactor must reproduce them exactly.
const GOLDEN: &[(&str, u64)] = &[
    ("fig1_example", 0xf3ef969194d8ed9d),
    ("fig3_example", 0xc89ad7e025408d9a),
    ("complete_6", 0x151b4c62f9f02e7e),
    ("cycle_9", 0x8846df3cbc725348),
    ("path_7", 0x202961742b529500),
    ("star_6", 0x1f228c3591c96997),
    ("complete_bipartite_3_4", 0x5de3bac0975a17a1),
    ("petersen", 0x93bda8fdf6996b46),
    ("hypercube_3", 0x5ab8ad6c1f0e9281),
    ("hypercube_4", 0xed80df8954510244),
    ("frucht", 0xf79f8b97bb85b358),
    ("circulant_13_1_5", 0xb50f0d06ff9a35cd),
    ("torus2_3_4", 0x5c7c5bd4085d5604),
    ("rary_tree_2_3", 0xa747fe8a941446d7),
    ("rary_tree_3_2", 0x7c792f59b2ffaead),
    ("johnson_5_2", 0x86a4ae36f7c883c2),
    ("paley_13", 0x5c15d59672133416),
    ("two_triangles", 0x33449bc532b877ad),
    ("two_petersens", 0x047e65a5de12325a),
    ("kneser_6_2", 0x7fccc2474eec82e0),
];

#[test]
fn forms_and_generators_match_pre_refactor_pins() {
    if std::env::var_os("DVICL_REGEN_GOLDENS").is_some() {
        for (name, g) in corpus() {
            println!("    (\"{name}\", 0x{:016x}),", digest(&g));
        }
        return;
    }
    let corpus = corpus();
    assert_eq!(corpus.len(), GOLDEN.len(), "corpus and golden table out of sync");
    for ((name, g), &(gname, want)) in corpus.iter().zip(GOLDEN) {
        assert_eq!(*name, gname, "corpus and golden table out of sync");
        assert_eq!(
            digest(g),
            want,
            "{name}: canonical form / labeling / generators deviate from the pre-refactor pin"
        );
    }
}
