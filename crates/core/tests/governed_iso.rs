//! Isomorphism answers must stay correct under any work budget: the
//! resilient build degrades to whole-graph labeling rather than giving a
//! wrong or missing answer.

use dvicl_core::{are_isomorphic, try_are_isomorphic, Budget, DviclError};
use dvicl_graph::{named, Graph, Perm};

fn shuffle(g: &Graph, salt: u64) -> Graph {
    let n = g.n();
    // Deterministic Fisher–Yates via an LCG.
    let mut image: Vec<u32> = (0..n as u32).collect();
    let mut state = salt | 1;
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        image.swap(i, j);
    }
    g.permuted(&Perm::from_image(image).expect("valid image"))
}

#[test]
fn shuffled_graphs_stay_isomorphic_under_tiny_work_budgets() {
    for (salt, g) in [
        named::petersen(),
        named::fig1_example(),
        named::frucht(),
        named::hypercube(4),
        named::complete_bipartite(3, 4),
    ]
    .into_iter()
    .enumerate()
    {
        let h = shuffle(&g, salt as u64 + 17);
        for max_work in [1, 2, 5, 50] {
            let tight = Budget::with_max_work(max_work);
            assert_eq!(
                try_are_isomorphic(&g, &h, &tight),
                Ok(true),
                "salt {salt}, max_work {max_work}: degraded build changed the verdict"
            );
        }
        assert!(are_isomorphic(&g, &h));
    }
}

#[test]
fn non_isomorphic_pairs_stay_distinguished_under_tiny_work_budgets() {
    // Same n and m, different structure: C6 vs 2×C3, and the CFI-style
    // pair of 3-regular graphs (Petersen vs Möbius ladder M5).
    let pairs = [
        (
            named::cycle(6),
            named::cycle(3).disjoint_union(&named::cycle(3)),
        ),
        (
            named::petersen(),
            Graph::from_edges(
                10,
                &[
                    (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9),
                    (9, 0), (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
                ],
            ),
        ),
    ];
    for (a, b) in &pairs {
        for max_work in [1, 3, 40] {
            assert_eq!(
                try_are_isomorphic(a, b, &Budget::with_max_work(max_work)),
                Ok(false)
            );
        }
    }
}

#[test]
fn deadline_exhaustion_is_an_error_not_a_degrade() {
    let g = named::hypercube(4);
    let expired = Budget::with_deadline(std::time::Duration::ZERO);
    std::thread::sleep(std::time::Duration::from_millis(2));
    let err = try_are_isomorphic(&g, &shuffle(&g, 3), &expired).unwrap_err();
    assert!(matches!(err, DviclError::BudgetExceeded { .. }));
    assert_eq!(err.exit_code(), 3);
}
