//! Property test for k-symmetry anonymization: the extension of any graph
//! must leave no orbit smaller than k (the paper's re-identification
//! guarantee).

use dvicl_core::{aut, build_autotree, ksym, DviclOptions};
use dvicl_graph::{Coloring, Graph, V};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_orbit_reaches_k(
        n in 2usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..30),
        k in 2usize..4,
    ) {
        let edges: Vec<(V, V)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let tree = build_autotree(&g, &Coloring::unit(n), &DviclOptions::default());
        let (g2, stats) = ksym::k_symmetric_extension(&g, &tree, k);
        prop_assert!(g2.n() >= n);
        prop_assert_eq!(g2.n() - n, stats.added_vertices);
        // Recompute orbits on the extension: all at least k.
        let t2 = build_autotree(&g2, &Coloring::unit(g2.n()), &DviclOptions::default());
        let mut orbits = aut::orbits(&t2);
        for cell in orbits.cells() {
            prop_assert!(cell.len() >= k, "orbit {:?} < k={}", cell, k);
        }
    }
}
