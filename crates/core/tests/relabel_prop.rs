//! Property test for the central behavior-preservation contract of the
//! arena-backed subgraph store: everything DviCL computes from a graph is
//! invariant under relabeling. For a random graph `G` and a random
//! permutation `γ`, the canonical form of `G^γ` must equal that of `G`
//! (Theorem 4.1's certificate property), and the automorphism group —
//! which `γ` merely conjugates — must keep its order and orbit-size
//! multiset.
//!
//! This exercises the whole divide-and-conquer pipeline (DivideI/DivideS
//! child carving, CombineCL memoization, CombineST certificate sorting)
//! on inputs the named-graph differential corpus cannot enumerate.

use dvicl_core::{aut, build_autotree, DviclOptions};
use dvicl_graph::{Coloring, Graph, Perm, V};
use proptest::prelude::*;

/// A permutation of `0..n` obtained by sorting indices under random keys.
fn perm_from_keys(n: usize, keys: &[u64]) -> Perm {
    let mut image: Vec<V> = (0..n as V).collect();
    // Tie-break by index so the image is always a valid permutation.
    image.sort_unstable_by_key(|&i| (keys[i as usize % keys.len()], i));
    // dvicl-lint: allow(panic-freedom) -- `image` is a sorted copy of 0..n, always a permutation
    Perm::from_image(image).expect("sorted index vector is a permutation")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn canonical_form_invariant_under_relabeling(
        n in 1usize..14,
        edges in proptest::collection::vec((0u32..14, 0u32..14), 0..40),
        keys in proptest::collection::vec(any::<u64>(), 14),
    ) {
        let edges: Vec<(V, V)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let gamma = perm_from_keys(n, &keys);
        let gg = g.permuted(&gamma);

        let opts = DviclOptions::default();
        let t1 = build_autotree(&g, &Coloring::unit(n), &opts);
        let t2 = build_autotree(&gg, &Coloring::unit(n), &opts);

        // Certificates are relabeling-invariant by construction.
        prop_assert_eq!(t1.canonical_form(), t2.canonical_form());

        // γ conjugates Aut(G): same order, same orbit-size multiset.
        prop_assert_eq!(aut::group_order(&t1), aut::group_order(&t2));
        let sizes = |t| {
            let mut s: Vec<usize> = aut::orbits(t).cells().iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        prop_assert_eq!(sizes(&t1), sizes(&t2));
    }

    #[test]
    fn canonical_labeling_produces_the_form(
        n in 1usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..30),
    ) {
        // The labeling the tree reports must actually *reproduce* its
        // canonical form when applied to the input graph — guards against
        // a labeling/form mismatch sneaking through the arena carve path.
        let edges: Vec<(V, V)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let tree = build_autotree(&g, &Coloring::unit(n), &DviclOptions::default());
        let lambda = tree.canonical_labeling();
        let mut relabeled: Vec<(V, V)> = Vec::with_capacity(g.m());
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                if u < v {
                    let (a, b) = (lambda.apply(u), lambda.apply(v));
                    relabeled.push((a.min(b), a.max(b)));
                }
            }
        }
        relabeled.sort_unstable();
        prop_assert_eq!(&relabeled, &tree.canonical_form().edges);
    }
}
