//! The structural-equivalence path (§6.1) must classify isomorphism
//! exactly like the plain path, on random graphs.

use dvicl_core::{build_autotree, simplify, DviclOptions};
use dvicl_graph::{Coloring, Graph, V};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<u32>(), 0..28).prop_map(move |raw| {
            let edges: Vec<(V, V)> = raw
                .iter()
                .map(|&x| ((x % n as u32) as V, ((x / 7919) % n as u32) as V))
                .collect();
            Graph::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equal simplified certificates ⇔ equal plain certificates.
    #[test]
    fn classification_agrees(a in arb_graph(10), b in arb_graph(10)) {
        let opts = DviclOptions::default();
        let plain = |g: &Graph| {
            build_autotree(g, &Coloring::unit(g.n()), &opts)
                .canonical_form()
                .to_form()
        };
        let simplified = |g: &Graph| {
            simplify::dvicl_simplified(g, &Coloring::unit(g.n()), &opts).certificate
        };
        prop_assert_eq!(plain(&a) == plain(&b), simplified(&a) == simplified(&b));
    }

    /// The simplified certificate is relabeling-invariant on twin-rich
    /// graphs (pendants doubled to force real collapsing).
    #[test]
    fn twin_rich_invariance(g in arb_graph(8), seed in any::<u64>()) {
        // Double every vertex as a pendant twin pair to force classes.
        let n = g.n();
        let mut edges: Vec<(V, V)> = g.edges().collect();
        for v in 0..n as V {
            edges.push((v, n as V + 2 * v));
            edges.push((v, n as V + 2 * v + 1));
        }
        let gg = Graph::from_edges(3 * n, &edges);
        let mut image: Vec<V> = (0..3 * n as u32).collect();
        let mut state = seed | 1;
        for i in (1..3 * n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            image.swap(i, (state >> 33) as usize % (i + 1));
        }
        let gamma = dvicl_graph::Perm::from_image(image).unwrap();
        let opts = DviclOptions::default();
        let c1 = simplify::dvicl_simplified(&gg, &Coloring::unit(3 * n), &opts);
        let c2 = simplify::dvicl_simplified(&gg.permuted(&gamma), &Coloring::unit(3 * n), &opts);
        prop_assert!(!c1.twins.non_singleton.is_empty(), "twins were planted");
        prop_assert_eq!(c1.certificate, c2.certificate);
    }
}
