//! AutoTree persistence: with the `serde` feature, a tree can be stored
//! and reloaded (the database-indexing workflow) with its certificate,
//! labels and navigation intact.
#![cfg(feature = "serde")]

use dvicl_core::{aut, build_autotree, AutoTree, DviclOptions};
use dvicl_graph::{named, Coloring};

#[test]
fn autotree_roundtrips_through_json() {
    let g = named::fig1_example();
    let tree = build_autotree(&g, &Coloring::unit(8), &DviclOptions::default());
    let json = serde_json::to_string(&tree).expect("serialize");
    let back: AutoTree = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.canonical_form(), tree.canonical_form());
    assert_eq!(back.canonical_labeling(), tree.canonical_labeling());
    assert_eq!(back.stats(), tree.stats());
    assert_eq!(aut::group_order(&back), aut::group_order(&tree));
    // SSM still works on the reloaded tree.
    let idx = dvicl_core::ssm::SsmIndex::new(&back);
    assert_eq!(
        dvicl_core::ssm::count_images(&back, &idx, &[4]).to_u64(),
        Some(3)
    );
}

#[test]
fn certificates_roundtrip() {
    let g = named::petersen();
    let form = dvicl_core::canonical_form(&g);
    let json = serde_json::to_string(&form).unwrap();
    let back: dvicl_graph::CanonForm = serde_json::from_str(&json).unwrap();
    assert_eq!(back, form);
}
