//! Arena stack discipline under injected faults (ISSUE: robustness
//! satellite 3).
//!
//! Two properties, both driven by the vendored deterministic proptest:
//!
//! 1. `SubArena` mark/release discipline survives *early returns*: when
//!    a carve hits the allocation ceiling (or a deeper frame errors),
//!    every enclosing frame still restores its mark, so the arena ends
//!    each frame exactly where it started — bytes and mark both.
//! 2. An installed fault plan may abort or degrade a build, but never
//!    corrupts process state: the next clean build reproduces the
//!    reference canonical form, and any tree that does come back is
//!    witness-valid.
//!
//! The fault plan is process-global, so the property that installs
//! plans and the one that does not are serialized on one mutex; this
//! file is its own test binary, keeping plans invisible to the rest of
//! the core suite.

use dvicl_core::{
    build_autotree_resilient, try_build_autotree, verify, DviclOptions, Sub, SubArena,
};
use dvicl_govern::fault::{self, FaultPlan};
use dvicl_govern::{Budget, DviclError, FaultAction};
use dvicl_graph::{Coloring, Graph, V};
use proptest::prelude::*;
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<u32>(), 0..80).prop_map(move |raw| {
            let edges: Vec<(V, V)> = raw
                .iter()
                .map(|&x| ((x % n as u32) as V, ((x / 7919) % n as u32) as V))
                .collect();
            Graph::from_edges(n, &edges)
        })
    })
}

/// Recursively carves children like `Builder::build` does, asserting at
/// every frame — on success *and* on early error return — that the
/// frame's mark and byte level are restored before the frame exits.
fn carve(
    arena: &mut SubArena,
    sub: &Sub,
    depth: usize,
    picks: &[u32],
) -> Result<(), DviclError> {
    let n = arena.verts(sub).len();
    if depth == 0 || n <= 2 {
        return Ok(());
    }
    let locals: Vec<u32> = (0..n as u32)
        .filter(|i| picks[*i as usize % picks.len()] % 3 != 0)
        .collect();
    if locals.is_empty() || locals.len() == n {
        return Ok(());
    }
    let mark = arena.mark();
    let bytes = arena.bytes_now();
    let r = arena
        .try_induced_child(sub, &locals)
        .and_then(|child| carve(arena, &child, depth - 1, picks));
    arena.release(mark);
    assert_eq!(arena.mark(), mark, "mark not restored at depth {depth}");
    assert_eq!(arena.bytes_now(), bytes, "bytes not restored at depth {depth}");
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: ceiling-induced early returns restore every frame.
    #[test]
    fn ceiling_early_returns_restore_every_frame(
        g in arb_graph(24),
        picks in proptest::collection::vec(any::<u32>(), 8..32),
        slack in 0usize..4096,
    ) {
        let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut arena = SubArena::new();
        let whole = arena.whole(&g);
        let base = arena.bytes_now();
        // A tight ceiling so deeper carves fail mid-recursion; zero
        // slack fails on the first carve.
        arena.set_ceiling_bytes(Some(base + slack));
        let outer_mark = arena.mark();
        let r = carve(&mut arena, &whole, 6, &picks);
        // The result may be Ok (all carves fit or were skipped) or a
        // typed memory error — and either way the arena is level again.
        if let Err(e) = r {
            prop_assert_eq!(e.exit_code(), 3, "ceiling must map to exhaustion");
        }
        prop_assert_eq!(arena.mark(), outer_mark);
        prop_assert_eq!(arena.bytes_now(), base);
    }

    /// Property 2: injected faults never leak state across builds.
    #[test]
    fn injected_faults_leave_no_residue(
        g in arb_graph(16),
        site_idx in 0usize..5,
        k in 1u64..6,
        cancel in any::<bool>(),
    ) {
        let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sites = [
            "core.build_node",
            "core.arena_carve",
            "core.leaf_ir",
            "refine.refine",
            "govern.spend",
        ];
        let opts = DviclOptions::default();
        let pi = Coloring::unit(g.n());
        let budget = Budget::unlimited();
        let reference = try_build_autotree(&g, &pi, &opts, &budget)
            .expect("clean build")
            .canonical_labeling();
        let reference = g.permuted(&reference);

        let action = if cancel { FaultAction::Cancel } else { FaultAction::Trip };
        fault::install(FaultPlan::one(action, sites[site_idx], k));
        let injected = build_autotree_resilient(&g, &pi, &opts, &budget);
        fault::clear();
        match injected {
            Ok(o) => {
                // Whatever came back — degraded or not — is witness-valid.
                verify::verify_tree(&g, &o.tree).expect("witness-valid tree");
            }
            Err(e) => prop_assert_eq!(e.exit_code(), 3, "typed exhaustion expected"),
        }

        // No residue: the clean rebuild reproduces the reference form.
        let clean = try_build_autotree(&g, &pi, &opts, &budget).expect("post-fault build");
        prop_assert_eq!(g.permuted(&clean.canonical_labeling()), reference);
    }
}
