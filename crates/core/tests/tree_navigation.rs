//! AutoTree navigation API: leaf lookup, deepest containing node, sibling
//! classes and sibling isomorphisms.

use dvicl_core::{build_autotree, AutoTree, DviclOptions, NodeKind};
use dvicl_graph::{named, Coloring, Graph};

fn tree_of(g: &Graph) -> AutoTree {
    build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default())
}

#[test]
fn leaf_of_every_vertex() {
    let g = named::fig1_example();
    let t = tree_of(&g);
    for v in 0..8 {
        let leaf = t.leaf_of(v);
        assert!(t.node(leaf).contains(v));
        assert!(t.node(leaf).children().is_empty());
    }
    // 4, 5, 6 are in distinct singleton leaves; 0..3 share the cycle leaf.
    assert_ne!(t.leaf_of(4), t.leaf_of(5));
    assert_eq!(t.leaf_of(0), t.leaf_of(2));
    assert_eq!(t.node(t.leaf_of(0)).kind(), NodeKind::NonSingletonLeaf);
}

#[test]
fn deepest_containing_grows_with_spread() {
    let g = named::fig1_example();
    let t = tree_of(&g);
    // {4,5} lives in the triangle's internal node, {4,0} only at the root.
    let tri = t.deepest_containing(&[4, 5]);
    assert_eq!(t.node(tri).verts(), vec![4, 5, 6]);
    assert_eq!(t.deepest_containing(&[4, 0]), t.root());
    // A single vertex descends to its leaf.
    assert_eq!(t.deepest_containing(&[5]), t.leaf_of(5));
}

#[test]
fn class_of_and_sibling_isomorphism() {
    let g = named::fig1_example();
    let t = tree_of(&g);
    let (parent, start, end) = t.class_of(t.leaf_of(4)).expect("not the root");
    assert_eq!(end - start, 3); // the three triangle singletons
    let kids = &t.node(parent).children()[start..end];
    let iso = t.sibling_isomorphism(kids[0], kids[1]);
    assert_eq!(iso.len(), 1);
    // The mapped pair must both be triangle vertices.
    let (a, b) = iso[0];
    assert!((4..=6).contains(&a) && (4..=6).contains(&b) && a != b);
    // The root has no class.
    assert!(t.class_of(t.root()).is_none());
}

#[test]
fn label_of_membership() {
    let g = named::fig3_example();
    let t = tree_of(&g);
    let root = t.node(t.root());
    for v in 0..g.n() as u32 {
        assert!(root.label_of(v).is_some());
    }
    let leaf = t.leaf_of(0);
    assert!(t.node(leaf).label_of(1).is_none() || t.node(leaf).contains(1));
}

#[test]
fn render_mentions_every_vertex_set() {
    let g = named::fig1_example();
    let t = tree_of(&g);
    let r = t.render();
    assert!(r.contains("[4, 5, 6]"));
    assert!(r.contains("[0, 1, 2, 3]"));
    assert!(r.lines().count() == t.len());
}

#[test]
fn parents_precede_children_in_storage() {
    let g = named::rary_tree(3, 2);
    let t = tree_of(&g);
    for node in t.nodes() {
        let id = node.id();
        if let Some(p) = node.parent() {
            assert!(p < id, "parent stored after child");
            assert!(t.node(p).children().contains(&id));
            assert_eq!(t.node(p).depth() + 1, node.depth());
        }
    }
}

#[test]
fn sibling_classes_partition_children() {
    let g = named::rary_tree(2, 3);
    let t = tree_of(&g);
    for node in t.nodes() {
        let covered: usize = node
            .sibling_classes()
            .iter()
            .map(|&(s, e)| (e - s) as usize)
            .sum();
        assert_eq!(covered, node.children().len());
        for w in node.sibling_classes().windows(2) {
            assert_eq!(w[0].1, w[1].0, "classes must be contiguous");
        }
    }
}
