//! `dvicl-pool` — a hand-rolled scoped work-stealing thread pool for
//! the parallel AutoTree build (ROADMAP item 1, DESIGN.md §14).
//!
//! The divide-&-conquer recursion of Algorithm 1 makes sibling subtrees
//! independent by construction: `CombineST` consumes only the
//! children's finished certificates, in child order. That is exactly
//! the fork/join shape, and this crate supplies the scheduling half of
//! it, in the house style — no external dependencies, `std` threads and
//! locks only:
//!
//! * one [`Pool`] per parallel build, with **one deque per worker**;
//! * a worker pushes and pops its own deque LIFO (newest first — the
//!   task whose data is hottest in cache), and steals from other
//!   workers FIFO (oldest first — the biggest unstarted subtree, which
//!   is the classic work-stealing heuristic for keeping steal counts
//!   low);
//! * idle workers park on a condvar and are woken by [`Pool::spawn`]
//!   and [`Pool::shut_down`];
//! * [`scope`] wires the pool to `std::thread::scope`, so worker
//!   closures may borrow the caller's stack (graph, coloring, budget)
//!   without any `'static` gymnastics.
//!
//! The pool is deliberately *policy-free*: it moves opaque task values
//! of type `T` and never interprets them. What a task means, how its
//! result rejoins the parent, and how errors propagate is the caller's
//! contract (`core::build` joins fragments in deterministic child
//! order; see DESIGN.md §14 for the ownership and determinism
//! argument). Two hooks tie the pool into the pipeline's governance
//! and observability:
//!
//! * every [`Pool::spawn`] passes the `pool.spawn` fault checkpoint
//!   (DESIGN.md §11), so the fault sweep can trip or cancel a build at
//!   the moment a subtree leaves its parent's call stack;
//! * spawns bump the `pool_tasks` counter, cross-worker acquisitions
//!   bump `pool_steals`, and per-worker task/steal/busy-time tallies
//!   are kept for the `--stats` report ([`Pool::worker_stats`]).
//!
//! # Example
//!
//! A parallel sum: the leader spawns one task per addend, workers and
//! leader drain the deques, and the scope exit proves quiescence.
//!
//! ```
//! use dvicl_pool::{scope, Pool};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let total = AtomicU64::new(0);
//! let mut worker_states = [(), ()]; // two helper workers, no state
//! scope(
//!     &mut worker_states,
//!     |wid, pool: &Pool<u64>, _state| loop {
//!         match pool.try_acquire(wid) {
//!             Some(x) => { total.fetch_add(x, Ordering::Relaxed); }
//!             None => if !pool.park(wid) { return },
//!         }
//!     },
//!     |pool| {
//!         for x in 1..=100u64 {
//!             pool.spawn(0, x)?;
//!         }
//!         // The leader helps until every deque is empty.
//!         while let Some(x) = pool.try_acquire(0) {
//!             total.fetch_add(x, Ordering::Relaxed);
//!         }
//!         Ok::<(), dvicl_govern::DviclError>(())
//!     },
//! )
//! .unwrap();
//! // scope() returns only after every worker thread has exited, so
//! // all 100 tasks have run.
//! assert_eq!(total.load(Ordering::Relaxed), 5050);
//! ```

#![deny(missing_docs)]

use dvicl_govern::DviclError;
use dvicl_obs::{self as obs, Counter};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Per-worker scheduling tallies, surfaced by [`Pool::worker_stats`]
/// and reported as `pool_worker` events under `--stats` /
/// `--trace-json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed (own pops plus steals).
    pub tasks: u64,
    /// Tasks this worker acquired from *another* worker's deque.
    pub steals: u64,
    /// Nanoseconds this worker spent inside task bodies (its span
    /// self-time, summed) — only tallied while obs timing is enabled.
    pub busy_ns: u64,
}

/// The shared state of one parallel region: per-worker deques, the
/// parking lot, and the shutdown latch. Created by [`scope`] (or
/// [`Pool::new`] in tests); workers address it by their worker id,
/// with id 0 conventionally the leader (the thread that called
/// [`scope`]).
#[derive(Debug)]
pub struct Pool<T> {
    /// Task deques, one per worker. `Mutex<VecDeque>` beats a lock-free
    /// deque here: spawns are coarse (whole subtrees, thresholded by
    /// the caller), so contention is negligible and the implementation
    /// stays obviously correct and dependency-free.
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Per-worker tallies, parallel to `deques`.
    stats: Vec<WorkerStatCell>,
    /// Parking lot: parked workers wait here; spawns and shutdown
    /// notify. The mutex guards nothing but the wait itself — the
    /// queues have their own locks — but waiters re-check
    /// [`Pool::has_work`] *while holding it*, and wakers notify while
    /// holding it, which closes the lost-wakeup race.
    lot: Mutex<()>,
    wake: Condvar,
    /// Set once by [`Pool::shut_down`]; parked workers observe it and
    /// exit their loops.
    done: AtomicBool,
}

/// The atomic cells behind one worker's [`WorkerStats`].
#[derive(Debug, Default)]
struct WorkerStatCell {
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_ns: AtomicU64,
}

impl<T: Send> Pool<T> {
    /// A pool for `threads` workers (ids `0..threads`), all deques
    /// empty. [`scope`] calls this; tests may drive a pool directly.
    pub fn new(threads: usize) -> Pool<T> {
        let threads = threads.max(1);
        Pool {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            stats: (0..threads).map(|_| WorkerStatCell::default()).collect(),
            lot: Mutex::new(()),
            wake: Condvar::new(),
            done: AtomicBool::new(false),
        }
    }

    /// Number of workers this pool schedules (including the leader).
    pub fn threads(&self) -> usize {
        self.deques.len()
    }

    /// Pushes `task` onto worker `wid`'s own deque and wakes a parked
    /// worker. Passes the `pool.spawn` fault checkpoint first: under an
    /// installed fault plan the spawn can fail with a typed error
    /// (budget trip, cancellation) *before* the task is queued — the
    /// task is dropped and the caller aborts its build, exactly like
    /// any other checkpointed failure.
    pub fn spawn(&self, wid: usize, task: T) -> Result<(), DviclError> {
        dvicl_govern::fault::checkpoint("pool.spawn")?;
        obs::bump(Counter::PoolTasks);
        self.deques[wid]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
        // Notify under the lot lock so a worker that just re-checked
        // `has_work` and is about to wait cannot miss this push.
        let _lot = self.lot.lock().unwrap_or_else(PoisonError::into_inner);
        self.wake.notify_all();
        Ok(())
    }

    /// Takes one task: worker `wid`'s own deque newest-first (LIFO),
    /// else another worker's oldest-first (FIFO steal, round-robin from
    /// `wid + 1`). `None` means every deque was empty at the time each
    /// was inspected. Steals bump `pool_steals` and the per-worker
    /// tally; every acquisition bumps the worker's task count.
    pub fn try_acquire(&self, wid: usize) -> Option<T> {
        let n = self.deques.len();
        if let Some(task) = self.deques[wid]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
        {
            self.stats[wid].tasks.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
        for off in 1..n {
            let victim = (wid + off) % n;
            if let Some(task) = self.deques[victim]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                obs::bump(Counter::PoolSteals);
                self.stats[wid].tasks.fetch_add(1, Ordering::Relaxed);
                self.stats[wid].steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    /// Parks worker `wid` until new work may exist or the pool shuts
    /// down. Returns `false` when the worker should exit (shutdown and
    /// nothing left to run); `true` means "look again" — spurious
    /// wakeups are allowed and harmless, the caller loops on
    /// [`Pool::try_acquire`] anyway.
    pub fn park(&self, _wid: usize) -> bool {
        let lot = self.lot.lock().unwrap_or_else(PoisonError::into_inner);
        // Re-check under the lot lock: a spawn that happened after our
        // last failed acquire notifies under this same lock, so either
        // we see its work here or the wait sees its notification.
        if self.has_work() {
            return true;
        }
        if self.done.load(Ordering::Acquire) {
            return false;
        }
        drop(
            self.wake
                .wait(lot)
                .unwrap_or_else(PoisonError::into_inner),
        );
        !self.done.load(Ordering::Acquire) || self.has_work()
    }

    /// Whether any deque currently holds a task.
    pub fn has_work(&self) -> bool {
        self.deques.iter().any(|d| {
            !d.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        })
    }

    /// Flags shutdown and wakes every parked worker. Call at
    /// quiescence — after the caller's joins have all completed — so
    /// workers exit instead of parking forever. ([`scope`] does this
    /// when the leader closure returns.)
    pub fn shut_down(&self) {
        self.done.store(true, Ordering::Release);
        let _lot = self.lot.lock().unwrap_or_else(PoisonError::into_inner);
        self.wake.notify_all();
    }

    /// Whether [`Pool::shut_down`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Adds `ns` nanoseconds to worker `wid`'s busy-time tally. The
    /// caller times its task bodies (only when obs timing is enabled)
    /// and reports here; the pool itself never reads clocks.
    pub fn note_busy(&self, wid: usize, ns: u64) {
        self.stats[wid].busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// The per-worker tallies accumulated so far, indexed by worker id.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.stats
            .iter()
            .map(|s| WorkerStats {
                tasks: s.tasks.load(Ordering::Relaxed),
                steals: s.steals.load(Ordering::Relaxed),
                busy_ns: s.busy_ns.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// An RAII span for one task body: opens the `pool.task` phase, so a
/// `--stats` report shows how much wall time ran *inside* pool tasks
/// (and, via self-time, how much of it was leaf work). Returned by a
/// function so the label literal lives in this crate, next to the
/// naming convention it must follow.
pub fn task_span() -> obs::Span {
    obs::span("pool.task")
}

/// Runs a parallel region: spawns one scoped thread per entry of
/// `states` (workers `1..=states.len()`, each receiving exclusive
/// access to its state), runs `leader` on the calling thread as worker
/// `0`, then shuts the pool down and joins every worker before
/// returning the leader's result.
///
/// The `worker` closure is the drain loop: it must keep acquiring
/// until [`Pool::park`] returns `false`. The `leader` closure owns the
/// work: it spawns tasks, helps drain, and must not return before its
/// own joins have completed — [`Pool::shut_down`] fires as soon as it
/// does. Worker threads may borrow from the caller's stack (the pool
/// is built on `std::thread::scope`).
///
/// Panic note: the pipeline's task bodies are panic-free by policy
/// (the `panic-freedom` lint rule); injected faults surface as typed
/// `DviclError`s through the caller's join results, never as unwinds.
/// Should a task body panic anyway, `std::thread::scope` re-raises it
/// after the region ends.
pub fn scope<T, W, R>(
    states: &mut [W],
    worker: impl Fn(usize, &Pool<T>, &mut W) + Sync,
    leader: impl FnOnce(&Pool<T>) -> R,
) -> R
where
    T: Send,
    W: Send,
{
    let pool = Pool::new(states.len() + 1);
    std::thread::scope(|s| {
        for (i, state) in states.iter_mut().enumerate() {
            let pool = &pool;
            let worker = &worker;
            s.spawn(move || worker(i + 1, pool, state));
        }
        let out = leader(&pool);
        pool.shut_down();
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvicl_govern::fault::{self, FaultPlan};
    use dvicl_govern::FaultAction;
    use std::sync::Mutex as StdMutex;

    /// Fault state is process-global; serialize the tests that install
    /// plans (same pattern as `govern::fault`'s own tests).
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn lifo_own_pop_fifo_steal() {
        let pool: Pool<u32> = Pool::new(2);
        pool.spawn(0, 1).unwrap();
        pool.spawn(0, 2).unwrap();
        pool.spawn(0, 3).unwrap();
        // Owner pops newest first...
        assert_eq!(pool.try_acquire(0), Some(3));
        // ...a thief steals oldest first.
        assert_eq!(pool.try_acquire(1), Some(1));
        assert_eq!(pool.try_acquire(1), Some(2));
        assert_eq!(pool.try_acquire(0), None);
        let stats = pool.worker_stats();
        assert_eq!(stats[0].tasks, 1);
        assert_eq!(stats[0].steals, 0);
        assert_eq!(stats[1].tasks, 2);
        assert_eq!(stats[1].steals, 2);
    }

    #[test]
    fn scope_drains_everything_and_joins() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let mut states = [(), (), ()];
        scope(
            &mut states,
            |wid, pool: &Pool<u64>, _| loop {
                match pool.try_acquire(wid) {
                    Some(x) => {
                        total.fetch_add(x, Ordering::Relaxed);
                    }
                    None => {
                        if !pool.park(wid) {
                            return;
                        }
                    }
                }
            },
            |pool| {
                for x in 1..=1000u64 {
                    pool.spawn(0, x).unwrap();
                }
                while let Some(x) = pool.try_acquire(0) {
                    total.fetch_add(x, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn single_worker_scope_runs_on_the_leader() {
        let mut none: [(); 0] = [];
        let got = scope(
            &mut none,
            |_wid, _pool: &Pool<u8>, _| unreachable!("no worker threads"),
            |pool| {
                pool.spawn(0, 7).unwrap();
                pool.try_acquire(0)
            },
        );
        assert_eq!(got, Some(7));
    }

    #[test]
    fn spawn_checkpoint_injects_typed_faults() {
        let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        fault::install(FaultPlan::one(FaultAction::Cancel, "pool.spawn", 2));
        let pool: Pool<u32> = Pool::new(1);
        assert!(pool.spawn(0, 1).is_ok());
        assert_eq!(pool.spawn(0, 2), Err(DviclError::Cancelled));
        // The failed spawn queued nothing; the first task is intact.
        assert_eq!(pool.try_acquire(0), Some(1));
        assert_eq!(pool.try_acquire(0), None);
        fault::clear();
    }

    #[test]
    fn park_returns_false_only_after_shutdown() {
        let pool: Pool<u32> = Pool::new(1);
        pool.spawn(0, 9).unwrap();
        // Work pending: park refuses to sleep.
        assert!(pool.park(0));
        assert_eq!(pool.try_acquire(0), Some(9));
        pool.shut_down();
        assert!(!pool.park(0));
    }
}
