//! The benchmark graph families (paper Table 2, from the bliss
//! collection), rebuilt from scratch.
//!
//! Exact constructions: wrapped grids (`grid-w`), Hadamard graphs (`had`),
//! projective/affine plane incidence graphs (`pg2`/`ag2`, prime orders),
//! Cai–Fürer–Immerman gadget graphs (`cfi`), and CFI over Möbius ladders as
//! the Miyazaki stand-in (`mz-aug`). The SAT-encoding families
//! (`difp`/`fpga`/`s3`) are *shape substitutes* — layered circuit-like
//! graphs tuned to the cells/singletons statistics of Table 2 — because the
//! original CNF instances are not available. All substitutions are logged
//! in EXPERIMENTS.md.

use dvicl_graph::{Graph, GraphBuilder, V};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `k`-dimensional wrapped grid (torus): `grid-w-3-20` is `dims = [20; 3]`.
/// Vertex-transitive, degree `2k`.
pub fn wrapped_grid(dims: &[usize]) -> Graph {
    assert!(!dims.is_empty() && dims.iter().all(|&d| d >= 3));
    let n: usize = dims.iter().product();
    let strides: Vec<usize> = {
        let mut s = vec![1; dims.len()];
        for i in 1..dims.len() {
            s[i] = s[i - 1] * dims[i - 1];
        }
        s
    };
    let mut b = GraphBuilder::with_capacity(n, n * dims.len());
    for v in 0..n {
        for (i, &d) in dims.iter().enumerate() {
            let coord = v / strides[i] % d;
            let w = v - coord * strides[i] + (coord + 1) % d * strides[i];
            b.add_edge(v as V, w as V);
        }
    }
    b.build()
}

/// The Hadamard graph of the Sylvester matrix `H_n` (`n` a power of two):
/// vertices `r⁺, r⁻, c⁺, c⁻` per row/column; `r^s — c^t` iff
/// `H[r][c]·s·t = +1`, plus the pairing edges `r⁺—r⁻`, `c⁺—c⁻`
/// (degree `n + 1`, matching the paper's `had-256` statistics).
pub fn hadamard(n: usize) -> Graph {
    assert!(n.is_power_of_two(), "Sylvester construction needs 2^k");
    // H[r][c] = (-1)^{popcount(r & c)}.
    let sign = |r: usize, c: usize| (r & c).count_ones().is_multiple_of(2);
    let total = 4 * n;
    // Layout: r⁺ = r, r⁻ = n + r, c⁺ = 2n + c, c⁻ = 3n + c.
    let mut b = GraphBuilder::with_capacity(total, total * (n + 1) / 2);
    for r in 0..n {
        b.add_edge(r as V, (n + r) as V);
        b.add_edge((2 * n + r) as V, (3 * n + r) as V);
        for c in 0..n {
            if sign(r, c) {
                b.add_edge(r as V, (2 * n + c) as V);
                b.add_edge((n + r) as V, (3 * n + c) as V);
            } else {
                b.add_edge(r as V, (3 * n + c) as V);
                b.add_edge((n + r) as V, (2 * n + c) as V);
            }
        }
    }
    b.build()
}

/// Point–line incidence graph of the projective plane `PG(2, q)` for prime
/// `q`: `q² + q + 1` points, as many lines, every line has `q + 1` points
/// and every point lies on `q + 1` lines ((q+1)-biregular, bipartite,
/// vertex classes {points, lines}).
pub fn pg2(q: usize) -> Graph {
    assert!(is_prime(q), "this construction implements prime orders");
    let np = q * q + q + 1;
    // Points/lines = 1-dim/2-dim subspaces of GF(q)³, both enumerated as
    // normalized triples.
    let reps = normalized_triples(q);
    assert_eq!(reps.len(), np);
    let mut b = GraphBuilder::with_capacity(2 * np, np * (q + 1));
    for (pi, p) in reps.iter().enumerate() {
        for (li, l) in reps.iter().enumerate() {
            let dot = (p[0] * l[0] + p[1] * l[1] + p[2] * l[2]) % q;
            if dot == 0 {
                b.add_edge(pi as V, (np + li) as V);
            }
        }
    }
    b.build()
}

/// Point–line incidence graph of the affine plane `AG(2, q)` for prime
/// `q`: `q²` points and `q² + q` lines; each line has `q` points, each
/// point lies on `q + 1` lines.
pub fn ag2(q: usize) -> Graph {
    assert!(is_prime(q), "this construction implements prime orders");
    let np = q * q;
    // Lines: y = m·x + b (q² of them) and x = c (q of them).
    let nl = q * q + q;
    let pt = |x: usize, y: usize| (x * q + y) as V;
    let mut b = GraphBuilder::with_capacity(np + nl, nl * q);
    for m in 0..q {
        for c in 0..q {
            let line = (np + m * q + c) as V;
            for x in 0..q {
                let y = (m * x + c) % q;
                b.add_edge(pt(x, y), line);
            }
        }
    }
    for c in 0..q {
        let line = (np + q * q + c) as V;
        for y in 0..q {
            b.add_edge(pt(c, y), line);
        }
    }
    b.build()
}

/// The Cai–Fürer–Immerman gadget graph over a cubic base graph: each base
/// vertex becomes 4 "middle" vertices (even edge-subsets) plus an `(a, b)`
/// pair per incident edge; `twist` flips one cross connection, producing a
/// non-isomorphic twin that 1-WL cannot distinguish. With a cubic base of
/// `k` vertices the result has `10k` vertices and `15k` edges — `cfi-200`
/// is `k = 200`.
pub fn cfi(base: &Graph, twist: bool) -> Graph {
    for v in 0..base.n() as V {
        assert_eq!(base.degree(v), 3, "CFI needs a cubic base");
    }
    let k = base.n();
    // Per vertex: slots 0..3 = middles, then (a, b) per incident edge in
    // neighbor order: 4 + 6 = 10 slots.
    let offset = |v: usize| 10 * v;
    let a_of = |base: &Graph, v: usize, w: V| {
        // dvicl-lint: allow(panic-freedom) -- a_of is only called with w drawn from base.neighbors(v), so the search always succeeds
        let idx = base.neighbors(v as V).binary_search(&w).expect("neighbor");
        offset(v) + 4 + 2 * idx
    };
    let mut b = GraphBuilder::with_capacity(10 * k, 15 * k);
    for v in 0..k {
        // Middles = subsets of {0,1,2} with even cardinality: {}, {0,1},
        // {0,2}, {1,2} encoded as bitmasks 0b000, 0b011, 0b101, 0b110.
        for (mi, mask) in [0b000usize, 0b011, 0b101, 0b110].iter().enumerate() {
            for e in 0..3usize {
                let w = base.neighbors(v as V)[e];
                let pair = a_of(base, v, w);
                let end = if mask >> e & 1 == 1 { pair } else { pair + 1 };
                b.add_edge((offset(v) + mi) as V, end as V);
            }
        }
    }
    // Cross edges: a—a and b—b across each base edge (twisted: a—b, b—a on
    // exactly one edge).
    let mut twisted = twist;
    for (u, w) in base.edges() {
        let au = a_of(base, u as usize, w);
        let aw = a_of(base, w as usize, u);
        if twisted {
            b.add_edge(au as V, (aw + 1) as V);
            b.add_edge((au + 1) as V, aw as V);
            twisted = false;
        } else {
            b.add_edge(au as V, aw as V);
            b.add_edge((au + 1) as V, (aw + 1) as V);
        }
    }
    b.build()
}

/// A cubic circulant base for [`cfi`]: the Möbius–Kantor-style circulant
/// `C_k(1, k/2)` (`k` even): every vertex joins its two ring neighbors and
/// its antipode.
pub fn cubic_circulant(k: usize) -> Graph {
    assert!(k >= 6 && k.is_multiple_of(2), "need even k >= 6");
    let mut b = GraphBuilder::with_capacity(k, 3 * k / 2);
    for v in 0..k {
        b.add_edge(v as V, ((v + 1) % k) as V);
        b.add_edge(v as V, ((v + k / 2) % k) as V);
    }
    b.build()
}

/// The Möbius ladder `M_k` (cycle `C_{2k}` plus antipodal rungs) — the
/// cubic base used for the Miyazaki-style family.
pub fn moebius_ladder(k: usize) -> Graph {
    cubic_circulant(2 * k)
}

/// Miyazaki-style stand-in `mz-aug-m`: the CFI construction over a Möbius
/// ladder of `m` rungs (a ring of twisted gadgets — the same global shape
/// as Miyazaki's hard instances for nauty).
pub fn mz_aug(m: usize) -> Graph {
    cfi(&moebius_ladder(m), true)
}

/// SAT-circuit shape substitute (`difp` / `fpga` / `s3` families): a
/// nearly-rigid sparse core — a random recursive tree (1-WL is complete on
/// trees, so a rigid random tree refines to a discrete coloring, exactly
/// like real CNF encodings of multipliers) with sparse random chords —
/// plus planted twin clusters and, optionally, even-ring pockets that
/// become the non-singleton AutoTree leaves Table 4 reports for `fpga`.
pub fn sat_like(
    layers: usize,
    width: usize,
    twin_clusters: usize,
    ring_pockets: usize,
    ring_size: usize,
    seed: u64,
) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let core = layers * width;
    let extra = twin_clusters * 2 + ring_pockets * ring_size;
    let mut b = GraphBuilder::with_capacity(core + extra, core * 3);
    // Random recursive tree spine.
    for v in 1..core {
        let parent = rng.gen_range(0..v);
        b.add_edge(v as V, parent as V);
    }
    // Sparse chords (~1.5 per vertex) keep the circuit-like density.
    for _ in 0..core + core / 2 {
        let u = rng.gen_range(0..core) as V;
        let w = rng.gen_range(0..core) as V;
        b.add_edge(u, w);
    }
    let mut next = core as V;
    for _ in 0..twin_clusters {
        let host = rng.gen_range(0..core) as V;
        b.add_edge(host, next);
        b.add_edge(host, next + 1);
        next += 2;
    }
    // Wheel pockets: the anchor joins every ring vertex, so DivideS strips
    // the spokes and the bare cycle survives as a non-singleton leaf.
    for _ in 0..ring_pockets {
        let anchor = rng.gen_range(0..core) as V;
        let base = next;
        let k = ring_size as V;
        for i in 0..k {
            b.add_edge(base + i, base + (i + 1) % k);
            b.add_edge(anchor, base + i);
        }
        next += k;
    }
    b.build()
}

fn is_prime(q: usize) -> bool {
    q >= 2 && (2..).take_while(|d| d * d <= q).all(|d| !q.is_multiple_of(d))
}

/// All normalized representatives of 1-dim subspaces of GF(q)³ (first
/// nonzero coordinate = 1).
fn normalized_triples(q: usize) -> Vec<[usize; 3]> {
    let mut out = Vec::with_capacity(q * q + q + 1);
    for y in 0..q {
        for z in 0..q {
            out.push([1, y, z]);
        }
    }
    for z in 0..q {
        out.push([0, 1, z]);
    }
    out.push([0, 0, 1]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapped_grid_matches_paper_stats() {
        // grid-w-3-20: 8000 vertices, 24000 edges, 6-regular.
        let g = wrapped_grid(&[20, 20, 20]);
        assert_eq!(g.n(), 8000);
        assert_eq!(g.m(), 24000);
        assert!((0..g.n() as V).all(|v| g.degree(v) == 6));
    }

    #[test]
    fn hadamard_matches_paper_stats() {
        // had-256: 1024 vertices, 131584 edges, 257-regular.
        let g = hadamard(256);
        assert_eq!(g.n(), 1024);
        assert_eq!(g.m(), 131_584);
        assert!((0..g.n() as V).all(|v| g.degree(v) == 257));
    }

    #[test]
    fn pg2_incidence_counts() {
        let q = 7;
        let g = pg2(q);
        let np = q * q + q + 1;
        assert_eq!(g.n(), 2 * np);
        assert_eq!(g.m(), np * (q + 1));
        assert!((0..g.n() as V).all(|v| g.degree(v) == q + 1));
        // Girth 6 (no 4-cycles): two points share exactly one line.
        for p1 in 0..4 as V {
            for p2 in (p1 + 1)..5 as V {
                let l1 = g.neighbors(p1);
                let common = l1.iter().filter(|l| g.has_edge(p2, **l)).count();
                assert_eq!(common, 1, "points {p1},{p2}");
            }
        }
    }

    #[test]
    fn ag2_incidence_counts() {
        let q = 5;
        let g = ag2(q);
        assert_eq!(g.n(), q * q + q * q + q);
        assert_eq!(g.m(), (q * q + q) * q);
        // Points have degree q+1, lines degree q.
        for p in 0..(q * q) as V {
            assert_eq!(g.degree(p), q + 1);
        }
        for l in (q * q) as V..g.n() as V {
            assert_eq!(g.degree(l), q);
        }
    }

    #[test]
    fn cfi_matches_paper_stats() {
        // cfi-200: base of 200 cubic vertices → 2000 vertices, 3000 edges,
        // 3-regular.
        let g = cfi(&cubic_circulant(200), false);
        assert_eq!(g.n(), 2000);
        assert_eq!(g.m(), 3000);
        assert!((0..g.n() as V).all(|v| g.degree(v) == 3));
    }

    #[test]
    fn cfi_twist_changes_the_graph_but_not_wl() {
        let base = cubic_circulant(10);
        let a = cfi(&base, false);
        let b = cfi(&base, true);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.degree_sequence(), b.degree_sequence());
        // The twisted pair is the classic 1-WL-indistinguishable pair;
        // dvicl-core's tests exercise the non-isomorphism.
        assert_ne!(a, b);
    }

    #[test]
    fn mz_aug_matches_scale() {
        // mz-aug-50 analog: Möbius ladder of 50 rungs → 100 cubic base
        // vertices → 1000 CFI vertices.
        let g = mz_aug(50);
        assert_eq!(g.n(), 1000);
        assert_eq!(g.m(), 1500);
    }

    #[test]
    fn sat_like_is_deterministic_and_sparse() {
        let a = sat_like(20, 200, 100, 10, 8, 42);
        let b = sat_like(20, 200, 100, 10, 8, 42);
        assert_eq!(a, b);
        assert!(a.avg_degree() < 8.0);
    }
}
