//! The named dataset suites: the 22 real-graph analogs (Table 1) and the
//! 9 benchmark graphs (Table 2), with deterministic per-name parameters.
//!
//! Sizes are scaled down from the paper's multi-million-vertex downloads
//! to keep the full evaluation runnable on one machine (see DESIGN.md §4);
//! relative proportions (average degree, twin-richness, pocket structure)
//! follow each original's published statistics.

use crate::bench_graphs;
use crate::social::{generate, SocialConfig};
use dvicl_graph::Graph;

/// A named dataset of the evaluation suite.
pub struct Dataset {
    /// Name, matching the paper's tables.
    pub name: &'static str,
    /// Generator.
    pub build: fn() -> Graph,
}

macro_rules! social {
    ($name:literal, $core:expr, $deg:expr, $fans:expr, $fan_size:expr,
     $tree_hubs:expr, $copies:expr, $tree_size:expr, $rings:expr, $ring_size:expr,
     $ring_growth:expr, $mirrors:expr, $mirror_size:expr, $mirror_deg:expr, $seed:expr) => {
        Dataset {
            name: $name,
            build: || {
                generate(&SocialConfig {
                    core_n: $core,
                    avg_degree: $deg,
                    exponent: 2.5,
                    twin_fans: $fans,
                    fan_size: $fan_size,
                    tree_hubs: $tree_hubs,
                    tree_copies: $copies,
                    tree_size: $tree_size,
                    ring_pockets: $rings,
                    ring_size: $ring_size,
                    ring_growth: $ring_growth,
                    mirror_classes: $mirrors,
                    mirror_class_size: $mirror_size,
                    mirror_degree: $mirror_deg,
                    seed: $seed,
                })
            },
        }
    };
}

/// The 22 social/web analogs of Table 1, ordered as in the paper.
///
/// Twin-heavy originals (WikiTalk, Youtube, Delicious, Flixster,
/// Friendster: huge pendant fans around hubs) get many fans; the web
/// graphs (BerkStan, Google, NotreDame, Stanford) additionally get ring
/// pockets, mirroring their non-singleton AutoTree leaves in Table 3.
/// BerkStan and Stanford grow their pockets (`ring_growth > 0`) so the
/// leaf-size *spread* matches the paper's Table 3 averages (up to
/// 163.59) instead of one repeated size — which also makes them the
/// suite's showcases for parallel construction: each distinct pocket is
/// an independent subtree with its own `IR` run.
pub fn social_suite() -> Vec<Dataset> {
    vec![
        social!("Amazon", 9000, 12.0, 220, 3, 60, 2, 4, 0, 8, 0, 0, 3, 0, 0xA3A201),
        social!("BerkStan", 9000, 14.0, 260, 4, 70, 2, 5, 54, 10, 6, 25, 8, 130, 0xBE0401),
        social!("Epinions", 5000, 10.7, 150, 4, 40, 2, 4, 0, 8, 0, 8, 3, 80, 0xE21301),
        social!("Gnutella", 4500, 4.7, 120, 3, 40, 2, 3, 0, 8, 0, 0, 3, 0, 0x64AA01),
        social!("Google", 10000, 9.9, 300, 4, 80, 2, 5, 18, 8, 0, 30, 7, 120, 0x600601),
        social!("LiveJournal", 16000, 12.0, 420, 4, 110, 2, 5, 0, 8, 0, 35, 10, 150, 0x11FE01),
        social!("NotreDame", 7000, 6.7, 420, 6, 90, 3, 5, 12, 12, 0, 25, 4, 70, 0x02DA01),
        social!("Pokec", 12000, 14.0, 200, 3, 50, 2, 4, 0, 8, 0, 20, 5, 160, 0x90CE01),
        social!("Slashdot0811", 5200, 12.1, 140, 4, 40, 2, 4, 0, 8, 0, 6, 3, 80, 0x51A801),
        social!("Slashdot0902", 5400, 12.3, 145, 4, 40, 2, 4, 0, 8, 0, 8, 4, 80, 0x51A902),
        social!("Stanford", 7500, 14.1, 260, 4, 70, 2, 5, 52, 8, 6, 18, 6, 130, 0x57A201),
        social!("WikiTalk", 9000, 3.9, 900, 8, 160, 3, 4, 0, 8, 0, 0, 3, 0, 0x3117A1),
        social!("wikivote", 3000, 14.0, 90, 6, 25, 2, 4, 0, 8, 0, 12, 30, 170, 0x313701),
        social!("Youtube", 9500, 5.3, 700, 6, 140, 3, 4, 0, 8, 0, 0, 3, 0, 0x900701),
        social!("Orkut", 14000, 16.0, 180, 3, 40, 2, 4, 0, 8, 0, 12, 4, 220, 0x09C001),
        social!("BuzzNet", 3600, 18.0, 100, 4, 25, 2, 4, 0, 8, 0, 45, 20, 110, 0xB55201),
        social!("Delicious", 7500, 5.1, 520, 5, 120, 3, 4, 10, 8, 0, 18, 4, 60, 0xDE1101),
        social!("Digg", 7800, 15.0, 220, 4, 60, 2, 4, 0, 8, 0, 0, 3, 0, 0xD16601),
        social!("Flixster", 11000, 6.3, 560, 6, 120, 3, 4, 0, 8, 0, 0, 3, 0, 0xF115A1),
        social!("Foursquare", 7200, 10.1, 210, 4, 60, 2, 4, 0, 8, 0, 40, 12, 100, 0x40CA01),
        social!("Friendster", 15000, 5.0, 620, 5, 140, 3, 4, 0, 8, 0, 0, 3, 0, 0xF21E01),
        social!("Lastfm", 8000, 7.6, 260, 4, 70, 2, 4, 0, 8, 0, 0, 3, 0, 0x1A57F1),
    ]
}

/// The 9 benchmark graphs of Table 2, ordered as in the paper.
///
/// `pg2`/`ag2` use prime order 47 instead of the paper's 49 (our finite
/// field is prime-order); `mz-aug` is CFI over a Möbius ladder;
/// `difp`/`fpga`/`s3` are SAT-circuit shape substitutes (see module docs).
pub fn benchmark_suite() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "ag2-47",
            build: || bench_graphs::ag2(47),
        },
        Dataset {
            name: "cfi-200",
            build: || bench_graphs::cfi(&bench_graphs::cubic_circulant(200), false),
        },
        Dataset {
            name: "difp-21-like",
            build: || bench_graphs::sat_like(24, 660, 90, 0, 8, 0xD1F9),
        },
        Dataset {
            name: "fpga11-20-like",
            build: || bench_graphs::sat_like(15, 300, 40, 22, 120, 0xF96A),
        },
        Dataset {
            name: "grid-w-3-20",
            build: || bench_graphs::wrapped_grid(&[20, 20, 20]),
        },
        Dataset {
            name: "had-256",
            build: || bench_graphs::hadamard(256),
        },
        Dataset {
            name: "mz-aug-50",
            build: || bench_graphs::mz_aug(50),
        },
        Dataset {
            name: "pg2-47",
            build: || bench_graphs::pg2(47),
        },
        Dataset {
            name: "s3-3-3-10-like",
            build: || bench_graphs::sat_like(26, 480, 110, 0, 8, 0x5331),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_cardinality() {
        assert_eq!(social_suite().len(), 22);
        assert_eq!(benchmark_suite().len(), 9);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = social_suite()
            .iter()
            .chain(benchmark_suite().iter())
            .map(|d| d.name)
            .collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn all_build_and_are_nontrivial() {
        for d in social_suite().iter().chain(benchmark_suite().iter()) {
            let g = (d.build)();
            assert!(g.n() > 500, "{} too small: {}", d.name, g.n());
            assert!(g.m() > g.n() / 2, "{} too sparse", d.name);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for d in social_suite().iter().take(3) {
            assert_eq!((d.build)(), (d.build)());
        }
    }
}
