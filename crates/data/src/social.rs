//! Social/web network analogs: Chung–Lu power-law cores with planted
//! symmetry.
//!
//! Real social networks are mostly *rigid* (nearly all orbit cells are
//! singletons — Table 1 of the paper) with symmetry concentrated in
//! locally duplicated structures: pendant twins, repeated hanging trees,
//! and small regular pockets. The generator reproduces exactly that
//! profile, which is what DviCL's divide rules exploit.

use dvicl_graph::{Graph, GraphBuilder, V};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a social analog.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    /// Vertices in the Chung–Lu core.
    pub core_n: usize,
    /// Target average degree of the core.
    pub avg_degree: f64,
    /// Power-law exponent of the expected-degree sequence (typically 2–3).
    pub exponent: f64,
    /// Number of hub vertices that receive pendant twin fans.
    pub twin_fans: usize,
    /// Leaves per twin fan (each fan is one structural-equivalence class).
    pub fan_size: usize,
    /// Number of hubs that receive `tree_copies` identical hanging trees.
    pub tree_hubs: usize,
    /// Identical subtree copies per tree hub (symmetric siblings).
    pub tree_copies: usize,
    /// Vertices per hanging tree (a random tree shape, same for each copy
    /// under one hub).
    pub tree_size: usize,
    /// Number of ring pockets (odd cycles hung from one core vertex) —
    /// these produce the paper's small non-singleton AutoTree leaves.
    pub ring_pockets: usize,
    /// Ring pocket circumference (even: the hung path refines to paired
    /// cells that no divide rule can separate).
    pub ring_size: usize,
    /// Per-pocket circumference increment: pocket `k` (0-based) has
    /// circumference `ring_size + k * ring_growth`. The paper's web
    /// graphs carry non-singleton leaves of widely *varied* sizes
    /// (Table 3: averages up to 163.59), not one repeated size — and
    /// distinct sizes are structurally distinct leaves, so each costs
    /// its own `IR` run instead of hitting the `CombineCL` memo.
    pub ring_growth: usize,
    /// Number of *mirror hub* classes: groups of structurally equivalent
    /// mid/high-influence vertices sharing an identical core neighborhood.
    /// Real networks have them (identically-behaving accounts); they are
    /// what makes the paper's Table 6 seed-set counts astronomically large
    /// — an IM seed falling in a class of size s has s interchangeable
    /// counterparts.
    pub mirror_classes: usize,
    /// Members per mirror class.
    pub mirror_class_size: usize,
    /// Shared-neighborhood size of each mirror class.
    pub mirror_degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            core_n: 5_000,
            avg_degree: 8.0,
            exponent: 2.5,
            twin_fans: 120,
            fan_size: 4,
            tree_hubs: 40,
            tree_copies: 2,
            tree_size: 5,
            ring_pockets: 0,
            ring_size: 8,
            ring_growth: 0,
            mirror_classes: 0,
            mirror_class_size: 3,
            mirror_degree: 60,
            seed: 0xD1C1,
        }
    }
}

/// Generates the analog graph for a config.
pub fn generate(cfg: &SocialConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.core_n;
    // Expected-degree weights w_i ∝ (i + i0)^(-1/(β-1)), scaled to the
    // target average degree (the standard Chung–Lu setup).
    let alpha = 1.0 / (cfg.exponent - 1.0);
    let i0 = 10.0; // dampens the largest hubs so dmax stays realistic
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    let sum: f64 = w.iter().sum();
    let scale = cfg.avg_degree * n as f64 / sum;
    for x in &mut w {
        *x *= scale;
    }
    // Cumulative distribution for endpoint sampling.
    let mut cum: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &x in &w {
        acc += x;
        cum.push(acc);
    }
    let total = acc;
    let m_target = (cfg.avg_degree * n as f64 / 2.0) as usize;
    let sample = |rng: &mut SmallRng, cum: &[f64]| -> V {
        let x = rng.gen::<f64>() * total;
        cum.partition_point(|&c| c < x).min(n - 1) as V
    };
    // Extra vertices for the planted structures (ring pocket `p` has
    // `ring_size + p * ring_growth` vertices).
    let ring_verts = cfg.ring_pockets * cfg.ring_size
        + cfg.ring_growth * (cfg.ring_pockets * cfg.ring_pockets.saturating_sub(1)) / 2;
    let extra = cfg.twin_fans * cfg.fan_size
        + cfg.tree_hubs * cfg.tree_copies * cfg.tree_size
        + ring_verts
        + cfg.mirror_classes * cfg.mirror_class_size;
    let mut b = GraphBuilder::with_capacity(n + extra, m_target + extra + n);
    for _ in 0..m_target {
        let u = sample(&mut rng, &cum);
        let v = sample(&mut rng, &cum);
        b.add_edge(u, v);
    }
    // Keep the core connected enough: chain stragglers lightly.
    for v in 1..n as V {
        if rng.gen_ratio(1, 8) {
            let u = sample(&mut rng, &cum);
            b.add_edge(v, u);
        }
    }
    let mut next = n as V;
    // Pendant twin fans: `fan_size` degree-1 twins on a random core hub.
    for _ in 0..cfg.twin_fans {
        let hub = sample(&mut rng, &cum);
        for _ in 0..cfg.fan_size {
            b.add_edge(hub, next);
            next += 1;
        }
    }
    // Duplicated hanging trees: `tree_copies` copies of one random tree
    // shape under a shared hub — symmetric siblings for the AutoTree.
    for _ in 0..cfg.tree_hubs {
        let hub = sample(&mut rng, &cum);
        // A random parent array defines the shape; all copies reuse it.
        let shape: Vec<usize> = (0..cfg.tree_size)
            .map(|i| if i == 0 { 0 } else { rng.gen_range(0..i) })
            .collect();
        for _ in 0..cfg.tree_copies {
            let base = next;
            for (i, &p) in shape.iter().enumerate() {
                if i == 0 {
                    b.add_edge(hub, base);
                } else {
                    b.add_edge(base + p as V, base + i as V);
                }
                next += 1;
            }
        }
    }
    // Ring pockets: a cycle whose every vertex is tied to one core anchor
    // (a wheel). The anchor–ring edges form a complete bipartite pair of
    // cells, so `DivideS` strips them and leaves the bare cycle — a
    // connected single-cell subgraph no divide rule can crack: exactly the
    // small non-singleton AutoTree leaves Table 3 reports for web graphs.
    for p in 0..cfg.ring_pockets {
        let anchor = sample(&mut rng, &cum);
        let base = next;
        let k = (cfg.ring_size + p * cfg.ring_growth) as V;
        for i in 0..k {
            b.add_edge(base + i, base + (i + 1) % k);
            b.add_edge(anchor, base + i);
        }
        next += k;
    }
    // Mirror hubs: each class adds `mirror_class_size` new vertices all
    // adjacent to one shared random core set — exact structural twins with
    // real influence.
    for _ in 0..cfg.mirror_classes {
        // Uniform (not weight-biased) anchor sampling keeps the classes'
        // shared neighborhoods nearly disjoint, so the greedy seed
        // selection picks one representative per class instead of
        // saturating on a single overlap region.
        let shared: Vec<V> = (0..cfg.mirror_degree)
            .map(|_| rng.gen_range(0..n) as V)
            .collect();
        for _ in 0..cfg.mirror_class_size {
            for &w in &shared {
                if w != next {
                    b.add_edge(next, w);
                }
            }
            next += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = SocialConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = SocialConfig {
            seed: 99,
            ..cfg.clone()
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn size_and_degree_are_plausible() {
        let cfg = SocialConfig {
            core_n: 2000,
            avg_degree: 8.0,
            ..SocialConfig::default()
        };
        let g = generate(&cfg);
        assert!(g.n() >= 2000);
        let d = g.avg_degree();
        assert!(d > 3.0 && d < 12.0, "avg degree {d}");
        // Power law: max degree far above average.
        assert!(g.max_degree() > 10 * d as usize);
    }

    #[test]
    fn ring_growth_varies_pocket_sizes() {
        let base = SocialConfig {
            core_n: 500,
            twin_fans: 0,
            tree_hubs: 0,
            ring_pockets: 5,
            ring_size: 6,
            ring_growth: 0,
            ..SocialConfig::default()
        };
        let flat = generate(&base);
        let grown = generate(&SocialConfig {
            ring_growth: 4,
            ..base.clone()
        });
        // Pocket p gains p * growth vertices: 0+4+8+12+16 = 40 extra.
        assert_eq!(grown.n(), flat.n() + 40);
        // Every pocket vertex has degree 3 (two ring neighbors + anchor),
        // so the largest pocket's last vertex exists and closes its ring.
        let last = grown.n() as V - 1;
        assert_eq!(grown.degree(last), 3);
    }

    #[test]
    fn twin_fans_create_structural_twins() {
        let cfg = SocialConfig {
            core_n: 500,
            twin_fans: 20,
            fan_size: 3,
            tree_hubs: 0,
            ring_pockets: 0,
            ..SocialConfig::default()
        };
        let g = generate(&cfg);
        // Count degree-1 vertices with a shared neighbor.
        let mut pendant_by_hub: std::collections::HashMap<V, usize> = Default::default();
        for v in 0..g.n() as V {
            if g.degree(v) == 1 {
                *pendant_by_hub.entry(g.neighbors(v)[0]).or_default() += 1;
            }
        }
        let fans = pendant_by_hub.values().filter(|&&c| c >= 3).count();
        assert!(fans >= 10, "only {fans} fans survived");
    }
}
