//! Deterministic synthetic dataset suite for the DviCL reproduction.
//!
//! The paper evaluates on 22 real graphs (SNAP/Konect downloads up to 117M
//! edges) and 9 benchmark graphs from the bliss collection. Neither is
//! available to this reproduction, so this crate builds substitutes, all
//! fully deterministic from per-dataset seeds:
//!
//! * [`social`] — scaled-down *analogs* of the 22 real graphs: a Chung–Lu
//!   power-law core (real social/web degree distributions) with planted
//!   symmetry — pendant twins, duplicated hanging trees, and ring pockets —
//!   because published analyses (refs \[24, 36\] of the paper) attribute
//!   real-network symmetry to exactly such locally duplicated structures.
//! * [`bench_graphs`] — from-scratch constructions of the benchmark
//!   families: wrapped grids, Hadamard graphs, projective/affine plane
//!   incidence graphs, Cai–Fürer–Immerman gadget graphs, Miyazaki-style
//!   twisted ladders, and SAT-circuit-shaped substitutes.
//!
//! See DESIGN.md §4 and EXPERIMENTS.md for the substitution rationale and
//! the per-dataset parameters.

#![warn(missing_docs)]

pub mod bench_graphs;
pub mod registry;
pub mod social;

pub use registry::{benchmark_suite, social_suite, Dataset};
