//! # dvicl — Graph Iso/Auto-morphism by Divide-&-Conquer
//!
//! A from-scratch Rust reproduction of *"Graph Iso/Auto-morphism: A
//! Divide-&-Conquer Approach"* (Lu, Yu, Zhang, Cheng — SIGMOD 2021): the
//! **DviCL** canonical labeling algorithm, the **AutoTree** index it
//! builds, the individualization-refinement baseline it improves on, and
//! the applications the paper evaluates (symmetric subgraph matching,
//! influence-maximization seed-set counting, subgraph clustering,
//! k-symmetry anonymization).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`graph`] — graphs, permutations, colorings, certificates, I/O.
//! * [`refine`] — equitable refinement (the paper's `R`).
//! * [`group`] — orbits, Schreier–Sims, big integers.
//! * [`canon`] — the IR baseline (nauty/bliss/traces stand-ins).
//! * [`core`] — DviCL, AutoTree, SSM, k-symmetry, twin simplification.
//! * [`index`] — the canonical-fingerprint index behind `dvicl batch`.
//! * [`apps`] — influence maximization, max clique, triangles, clustering.
//! * [`data`] — the deterministic evaluation dataset suite.
//!
//! ## Quickstart
//!
//! ```
//! use dvicl::graph::{named, Coloring};
//! use dvicl::core::{aut, build_autotree, DviclOptions};
//!
//! let g = named::petersen();
//! let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
//! assert_eq!(aut::group_order(&tree).to_u64(), Some(120));
//!
//! // Isomorphism testing: certificates are equal iff graphs are isomorphic.
//! let relabeled = g.permuted(&dvicl::graph::Perm::from_cycles(10, &[&[0, 7, 3]]).unwrap());
//! assert_eq!(
//!     dvicl::core::canonical_form(&g),
//!     dvicl::core::canonical_form(&relabeled),
//! );
//! ```

#![warn(missing_docs)]

pub use dvicl_apps as apps;
pub use dvicl_canon as canon;
pub use dvicl_core as core;
pub use dvicl_data as data;
pub use dvicl_govern as govern;
pub use dvicl_graph as graph;
pub use dvicl_group as group;
pub use dvicl_index as index;
pub use dvicl_refine as refine;
