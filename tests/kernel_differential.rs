//! Differential oracle for the refinement-kernel dispatcher: over a
//! corpus of suite graphs, every combination of `--kernel
//! general|bitset` × `--threads 1|4` must produce **byte-identical**
//! results — the same canonical form, the same canonical labeling, and
//! the same generator list in the same order.
//!
//! This is the external half of the kernel-parity contract (DESIGN.md
//! §15; the partition-level parity proptests live next to the kernels
//! in `dvicl-refine`): the kernel choice may only change wall-clock
//! time and kernel counters, never a byte of output, because both
//! kernels feed the same fragment stream into the shared
//! `Partition::rewrite_split`. Crossing kernels with thread widths pins
//! the per-worker kernel state: each pool worker owns a private
//! `Refiner` beside its arena and memo shard, and work stealing must
//! not perturb what any kernel computes.

use dvicl::canon::{Config, KernelKind};
use dvicl::core::{aut, DviclOptions, Session};
use dvicl::graph::{named, Coloring, Graph};

/// Spawn-relevant shapes (components, nested divisions, non-singleton
/// leaves) plus suite graphs that stay test-friendly in debug builds.
fn corpus() -> Vec<(String, Graph)> {
    let mut graphs: Vec<(String, Graph)> = vec![
        ("fig1".into(), named::fig1_example()),
        ("petersen_x2".into(), named::petersen().disjoint_union(&named::petersen())),
        ("rary_3_4".into(), named::rary_tree(3, 4)),
        (
            "cube_plus_k49".into(),
            named::hypercube(3).disjoint_union(&named::complete_bipartite(4, 9)),
        ),
    ];
    for d in dvicl::data::benchmark_suite() {
        if ["mz-aug-50", "fpga11-20-like"].contains(&d.name) {
            graphs.push((d.name.to_string(), (d.build)()));
        }
    }
    graphs
}

fn session(kernel: KernelKind, threads: usize) -> Session {
    let mut leaf_config = Config::bliss_like();
    leaf_config.kernel = kernel;
    Session::new(DviclOptions {
        leaf_config,
        threads,
        ..DviclOptions::default()
    })
}

#[test]
fn kernels_and_thread_widths_are_byte_identical() {
    let mut sessions: Vec<(String, Session)> = Vec::new();
    for kernel in [KernelKind::General, KernelKind::Bitset] {
        for threads in [1usize, 4] {
            sessions.push((format!("{}-t{threads}", kernel.name()), session(kernel, threads)));
        }
    }
    for (name, g) in corpus() {
        let pi = Coloring::unit(g.n());
        let mut baseline = None;
        for (mode, s) in &mut sessions {
            let tree = s.build(&g, &pi);
            let obtained = (
                tree.canonical_form().to_form(),
                tree.canonical_labeling(),
                aut::generators(&tree),
                aut::group_order(&tree),
            );
            match &baseline {
                None => baseline = Some(obtained),
                Some(expected) => assert_eq!(
                    expected, &obtained,
                    "{name}: {mode} diverged from general-t1"
                ),
            }
        }
    }
}

#[test]
fn auto_dispatch_matches_pinned_kernels() {
    // `--kernel auto` (the default) routes small graphs to the bitset
    // kernel and large ones to the general kernel; whichever side of
    // the threshold a graph lands on, the output is the pinned output.
    let mut auto = session(KernelKind::Auto, 1);
    let mut general = session(KernelKind::General, 1);
    for (name, g) in corpus() {
        let pi = Coloring::unit(g.n());
        let a = auto.build(&g, &pi);
        let b = general.build(&g, &pi);
        assert_eq!(
            a.canonical_form(),
            b.canonical_form(),
            "{name}: auto dispatch changed the canonical form"
        );
    }
}
