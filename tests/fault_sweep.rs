//! Deterministic fault-injection sweep across the whole pipeline
//! (ISSUE: robustness tentpole, pillar B).
//!
//! For a corpus of benchmark graphs, a clean *probe* run first counts how
//! often every fault checkpoint fires. The sweep then enumerates
//! injection points `(site, k, action)` drawn from those counts — the
//! pipeline is deterministic, so the k-th hit of a site on the injected
//! run replays the exact program state of the clean run — and asserts,
//! for every point:
//!
//! 1. the build never panics,
//! 2. it returns either `Ok` (possibly degraded) or a *typed* error
//!    whose exit code is the documented 2 or 3 — never an abort, never
//!    exit-code 4 (healthy pipelines have no witness failures),
//! 3. every `Ok` tree — degraded or not — passes the full witness check
//!    (`verify_tree`: root form reproduction + generator soundness),
//! 4. after the sweep, a clean run still produces the probe's canonical
//!    form: no injected failure leaks state into later runs.
//!
//! Everything runs inside a single `#[test]` because the fault plan is
//! process-global; this file is its own test binary, so no other test
//! can observe an installed plan.
//!
//! Sweep size: the default (tier-1, debug builds) covers one graph so
//! the test stays in the seconds range. `DVICL_FAULT_SWEEP=full` — set
//! by the CI fault-sweep job, which runs in release — covers the whole
//! corpus and asserts the ≥100-injection-point floor.
//!
//! The `pool.spawn` checkpoint only fires in threaded builds, so the
//! sweep ends with a dedicated section: trip/cancel injections at every
//! spawn of a 4-thread build, each followed by a clean rebuild in the
//! same session that must reproduce the reference certificate — the
//! no-panic and no-arena-leak halves of the DESIGN.md §14 contract.

use dvicl::core::{build_autotree_resilient, verify, DviclOptions};
use dvicl::govern::fault::{self, FaultPlan};
use dvicl::govern::{Budget, FaultAction};
use dvicl::graph::{Coloring, Graph};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// The cheap half of `benchmark_suite()`: five graphs whose debug-mode
/// divided builds finish in about a second each, so the sweep stays
/// inside tier-1 test time. (ag2/pg2/had need minutes in debug.)
const CORPUS: [&str; 5] = [
    "mz-aug-50",
    "cfi-200",
    "grid-w-3-20",
    "fpga11-20-like",
    "s3-3-3-10-like",
];

fn full_sweep() -> bool {
    std::env::var("DVICL_FAULT_SWEEP").as_deref() == Ok("full")
}

fn corpus() -> Vec<(&'static str, Graph)> {
    let quick = ["fpga11-20-like"];
    let names: &[&str] = if full_sweep() { &CORPUS } else { &quick };
    dvicl::data::benchmark_suite()
        .into_iter()
        .filter(|d| names.contains(&d.name))
        .map(|d| (d.name, (d.build)()))
        .collect()
}

fn build(g: &Graph) -> Result<dvicl::core::BuildOutcome, dvicl::govern::DviclError> {
    // Generous real deadline so a degraded whole-graph rebuild cannot
    // hang the sweep; a wall-clock trip surfaces as a typed error, which
    // the sweep accepts.
    let budget = Budget::new(Some(Duration::from_secs(60)), None);
    let opts = DviclOptions::default();
    build_autotree_resilient(g, &Coloring::unit(g.n()), &opts, &budget)
}

#[test]
fn sweep_injects_faults_at_every_checkpoint() {
    let corpus = corpus();
    assert!(!corpus.is_empty(), "corpus datasets must resolve");

    let mut points = 0u32;
    let mut degraded_ok = 0u32;
    let mut typed_errors = 0u32;

    for (name, g) in &corpus {
        // Probe: clean run under an empty plan counts checkpoint hits.
        fault::install(FaultPlan::probe());
        let probe = build(g).unwrap_or_else(|e| panic!("{name}: clean probe failed: {e}"));
        assert!(!probe.degraded, "{name}: clean probe must not degrade");
        let hits = fault::hit_counts();
        fault::clear();
        let reference = g.permuted(&probe.tree.canonical_labeling());

        let mut plan_points: Vec<(&'static str, u64, FaultAction)> = Vec::new();
        for &(site, count) in &hits {
            if count == 0 {
                continue;
            }
            let mid = count / 2 + 1;
            // Earliest trip (deepest degradation), cancellation at the
            // start / middle / end of the site's life, one allocation
            // ceiling in the middle. Trip points force a whole-graph
            // fallback rebuild — the expensive case — so quick mode
            // keeps exactly one of them.
            if full_sweep() || site == "core.build_node" {
                plan_points.push((site, 1, FaultAction::Trip));
            }
            let mut ks = vec![1, mid, count];
            ks.dedup();
            for k in ks {
                plan_points.push((site, k, FaultAction::Cancel));
            }
            plan_points.push((site, mid, FaultAction::Alloc));
        }
        assert!(
            plan_points.len() >= 10,
            "{name}: expected a rich checkpoint profile, got {hits:?}"
        );

        for (site, k, action) in plan_points {
            fault::install(FaultPlan::one(action, site, k));
            let outcome = catch_unwind(AssertUnwindSafe(|| build(g)));
            let fired = fault::hit_counts().iter().any(|&(s, c)| s == site && c >= k);
            fault::clear();
            let outcome = outcome.unwrap_or_else(|_| {
                panic!("{name}: {}@{site}:{k} made the build panic", action.name())
            });
            assert!(
                fired,
                "{name}: {}@{site}:{k} never fired (probe said it would)",
                action.name()
            );
            points += 1;
            match outcome {
                Ok(o) => {
                    // An injected fault that still yields a tree must
                    // yield a *witness-valid* tree, degraded or not.
                    verify::verify_tree(g, &o.tree).unwrap_or_else(|e| {
                        panic!("{name}: {}@{site}:{k} witness failure: {e}", action.name())
                    });
                    if o.degraded {
                        degraded_ok += 1;
                    }
                }
                Err(e) => {
                    let code = e.exit_code();
                    assert!(
                        code == 2 || code == 3,
                        "{name}: {}@{site}:{k} gave undocumented exit {code}: {e}",
                        action.name()
                    );
                    typed_errors += 1;
                }
            }
        }

        // State restoration: with the plan gone, the pipeline reproduces
        // the probe's canonical form exactly.
        let clean = build(g).unwrap_or_else(|e| panic!("{name}: post-sweep build failed: {e}"));
        assert!(!clean.degraded, "{name}: post-sweep build must not degrade");
        assert_eq!(
            g.permuted(&clean.tree.canonical_labeling()),
            reference,
            "{name}: canonical form drifted after the sweep"
        );
    }

    // The parallel surface: `pool.spawn` only fires in threaded builds,
    // so it gets its own sweep over a graph whose components clear the
    // spawn threshold. Every injection must leave the process alive
    // (workers are panic-free by design — errors travel inside join
    // cells) and leave the session's worker arenas balanced, which the
    // post-fault clean rebuilds prove: a leaked arena segment would
    // shift later adoptions and with them the certificate.
    let two_cycles = {
        let c64 = dvicl::graph::named::cycle(64);
        c64.disjoint_union(&dvicl::graph::named::cycle(64))
    };
    let par_opts = DviclOptions {
        threads: 4,
        ..DviclOptions::default()
    };
    let budget = || Budget::new(Some(Duration::from_secs(60)), None);
    fault::install(FaultPlan::probe());
    let reference = build_autotree_resilient(
        &two_cycles,
        &Coloring::unit(two_cycles.n()),
        &par_opts,
        &budget(),
    )
    .expect("clean threaded probe");
    let spawns = fault::hit_counts()
        .iter()
        .find(|&&(site, _)| site == "pool.spawn")
        .map(|&(_, count)| count)
        .unwrap_or(0);
    fault::clear();
    assert!(spawns >= 2, "threaded probe must spawn both components, saw {spawns}");
    let mut session = dvicl::core::Session::new(par_opts.clone());
    let reference_form = reference.tree.canonical_form().to_form();
    for k in 1..=spawns {
        for action in [FaultAction::Trip, FaultAction::Cancel] {
            fault::install(FaultPlan::one(action, "pool.spawn", k));
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.try_build(&two_cycles, &Coloring::unit(two_cycles.n()), &budget())
            }));
            fault::clear();
            let outcome = outcome.unwrap_or_else(|_| {
                panic!("{}@pool.spawn:{k} made the threaded build panic", action.name())
            });
            points += 1;
            match outcome {
                Ok(tree) => {
                    verify::verify_tree(&two_cycles, &tree).unwrap_or_else(|e| {
                        panic!("{}@pool.spawn:{k} witness failure: {e}", action.name())
                    });
                }
                Err(e) => {
                    let code = e.exit_code();
                    assert!(
                        code == 2 || code == 3,
                        "{}@pool.spawn:{k} gave undocumented exit {code}: {e}",
                        action.name()
                    );
                    typed_errors += 1;
                }
            }
            // No arena leaks: the same session, its worker arenas
            // included, must certify byte-identically right after the
            // injected failure.
            let clean = session
                .try_build(&two_cycles, &Coloring::unit(two_cycles.n()), &budget())
                .unwrap_or_else(|e| {
                    panic!("post-{}@pool.spawn:{k} clean build failed: {e}", action.name())
                });
            assert_eq!(
                clean.canonical_form().to_form(),
                reference_form,
                "{}@pool.spawn:{k}: certificate drifted after the injection",
                action.name()
            );
        }
    }

    if full_sweep() {
        assert!(
            points >= 100,
            "full sweep must cover at least 100 injection points, covered {points}"
        );
        assert!(corpus.len() >= 5, "full sweep must span the whole corpus");
    }
    assert!(degraded_ok > 0, "no injection exercised the degraded path");
    assert!(typed_errors > 0, "no injection surfaced a typed error");
    println!(
        "fault sweep: {points} injection points, {degraded_ok} degraded-ok, {typed_errors} typed errors"
    );
}
