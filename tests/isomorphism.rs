//! End-to-end isomorphism-decision tests: DviCL certificates against the
//! brute-force oracle and the IR baseline across random and structured
//! graphs.

use dvicl::canon::{canonical_form as ir_form, Config};
use dvicl::core::{are_isomorphic, are_isomorphic_colored, canonical_form};
use dvicl::graph::{named, Coloring, Graph, Perm, V};
use dvicl::group::brute;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<u32>(), 0..=max_edges.min(40)).prop_map(move |raw| {
            let edges: Vec<(V, V)> = raw
                .iter()
                .map(|&x| {
                    let u = (x % n as u32) as V;
                    let v = ((x / 7919) % n as u32) as V;
                    (u, v)
                })
                .collect();
            Graph::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Certificates are relabeling-invariant: canon(G) == canon(G^γ).
    #[test]
    fn dvicl_certificate_is_invariant(g in arb_graph(12), seed in any::<u64>()) {
        let n = g.n();
        let gamma = {
            let mut image: Vec<V> = (0..n as V).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                image.swap(i, j);
            }
            Perm::from_image(image).unwrap()
        };
        prop_assert_eq!(canonical_form(&g), canonical_form(&g.permuted(&gamma)));
    }

    /// DviCL and the IR baseline agree on iso/non-iso for random pairs.
    #[test]
    fn dvicl_agrees_with_baseline(a in arb_graph(9), b in arb_graph(9)) {
        let dvicl_says = are_isomorphic(&a, &b);
        let baseline_says = a.n() == b.n()
            && ir_form(&a, &Coloring::unit(a.n()), &Config::bliss_like()).form
                == ir_form(&b, &Coloring::unit(b.n()), &Config::bliss_like()).form;
        prop_assert_eq!(dvicl_says, baseline_says);
    }

    /// DviCL's verdict matches the brute-force oracle on small pairs.
    #[test]
    fn dvicl_matches_brute_force(a in arb_graph(7), b in arb_graph(7)) {
        if a.n() != b.n() {
            return Ok(());
        }
        let truth = brute::isomorphic(
            &a, &Coloring::unit(a.n()),
            &b, &Coloring::unit(b.n()),
        );
        prop_assert_eq!(are_isomorphic(&a, &b), truth);
    }
}

#[test]
fn cfi_twins_are_distinguished() {
    // The Cai–Fürer–Immerman pair: 1-WL-equivalent but non-isomorphic.
    // Canonical labeling must separate them (refinement alone cannot).
    let base = dvicl::data::bench_graphs::cubic_circulant(12);
    let plain = dvicl::data::bench_graphs::cfi(&base, false);
    let twisted = dvicl::data::bench_graphs::cfi(&base, true);
    assert_eq!(plain.n(), twisted.n());
    assert_eq!(plain.m(), twisted.m());
    assert!(!are_isomorphic(&plain, &twisted));
    // And each is isomorphic to a shuffled copy of itself.
    let gamma = Perm::from_cycles(plain.n(), &[&[0, 17, 33], &[5, 88]]).unwrap();
    assert!(are_isomorphic(&plain, &plain.permuted(&gamma)));
}

#[test]
fn colored_isomorphism_distinguishes_colorings() {
    let g = named::cycle(8);
    let pin_adjacent = Coloring::from_cells(vec![vec![2, 3, 4, 5, 6, 7], vec![0, 1]]).unwrap();
    let pin_opposite = Coloring::from_cells(vec![vec![1, 2, 3, 5, 6, 7], vec![0, 4]]).unwrap();
    assert!(!are_isomorphic_colored(&g, &pin_adjacent, &g, &pin_opposite));
    let pin_adjacent2 = Coloring::from_cells(vec![vec![0, 1, 2, 3, 4, 7], vec![5, 6]]).unwrap();
    assert!(are_isomorphic_colored(&g, &pin_adjacent, &g, &pin_adjacent2));
}

#[test]
fn regular_non_isomorphic_families() {
    // All 3-regular graphs on 8 vertices fall into 5 isomorphism classes;
    // check a few representatives pairwise.
    let cube = named::hypercube(3);
    let k33_plus = named::complete_bipartite(3, 3); // 6 vertices, control
    let moebius = dvicl::data::bench_graphs::cubic_circulant(8); // Wagner graph
    assert!(!are_isomorphic(&cube, &moebius));
    assert_eq!(k33_plus.n(), 6);
    // Certificates of equal-size regular graphs differ.
    assert_ne!(canonical_form(&cube), canonical_form(&moebius));
}

#[test]
fn benchmark_graphs_self_consistency() {
    for d in dvicl::data::benchmark_suite() {
        if !matches!(d.name, "grid-w-3-20" | "mz-aug-50" | "cfi-200") {
            continue; // keep CI time bounded; others covered elsewhere
        }
        let g = (d.build)();
        let gamma = Perm::from_cycles(g.n(), &[&[0, (g.n() - 1) as V, 3]]).unwrap();
        assert!(are_isomorphic(&g, &g.permuted(&gamma)), "{}", d.name);
    }
}
