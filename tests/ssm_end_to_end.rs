//! End-to-end symmetric subgraph matching: SSM-AT results, counts and
//! keys against brute force, and the SM-baseline comparison, on random and
//! structured graphs.

use dvicl::core::ssm::{count_images, enumerate_images, same_symmetry, symmetric_key, SsmIndex};
use dvicl::core::{build_autotree, sm, AutoTree, DviclOptions};
use dvicl::graph::{Coloring, Graph, V};
use dvicl::group::brute;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn setup(g: &Graph) -> (AutoTree, SsmIndex) {
    let t = build_autotree(g, &Coloring::unit(g.n()), &DviclOptions::default());
    let i = SsmIndex::new(&t);
    (t, i)
}

fn brute_images(g: &Graph, set: &[V]) -> BTreeSet<Vec<V>> {
    let pi = Coloring::unit(g.n());
    brute::automorphisms(g, &pi)
        .iter()
        .map(|gamma| {
            let mut img: Vec<V> = set.iter().map(|&v| gamma.apply(v)).collect();
            img.sort_unstable();
            img
        })
        .collect()
}

fn arb_case(max_n: usize) -> impl Strategy<Value = (Graph, Vec<V>)> {
    (3..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), 0..24),
            proptest::collection::vec(0..n as u32, 1..=3),
        )
            .prop_map(move |(raw, set)| {
                let edges: Vec<(V, V)> = raw
                    .iter()
                    .map(|&x| ((x % n as u32) as V, ((x / 7919) % n as u32) as V))
                    .collect();
                let mut set: Vec<V> = set;
                set.sort_unstable();
                set.dedup();
                (Graph::from_edges(n, &edges), set)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SSM-AT enumeration equals the brute-force image set.
    #[test]
    fn enumeration_is_exact((g, set) in arb_case(8)) {
        let (t, i) = setup(&g);
        let truth = brute_images(&g, &set);
        let res = enumerate_images(&t, &i, &set, 100_000);
        prop_assert!(!res.truncated);
        let got: BTreeSet<Vec<V>> = res.matches.into_iter().collect();
        prop_assert_eq!(got, truth);
    }

    /// The exact count equals the brute-force orbit size.
    #[test]
    fn counting_is_exact((g, set) in arb_case(8)) {
        let (t, i) = setup(&g);
        prop_assert_eq!(
            count_images(&t, &i, &set).to_u64(),
            Some(brute_images(&g, &set).len() as u64)
        );
    }

    /// Key equality coincides with brute-force symmetry for pairs of sets.
    #[test]
    fn keys_are_sound_and_complete((g, s1) in arb_case(7), raw in proptest::collection::vec(any::<u32>(), 1..=3)) {
        let n = g.n() as u32;
        let mut s2: Vec<V> = raw.iter().map(|&x| x % n).collect();
        s2.sort_unstable();
        s2.dedup();
        let (t, i) = setup(&g);
        let truth = brute_images(&g, &s1).contains(&s2);
        prop_assert_eq!(same_symmetry(&t, &i, &s1, &s2), truth);
    }
}

#[test]
fn ssm_at_agrees_with_sm_baseline() {
    // SM (VF2) + key filtering must give exactly SSM-AT's answer.
    for (g, query) in [
        (dvicl::graph::named::fig1_example(), vec![0u32, 1]),
        (dvicl::graph::named::fig3_example(), vec![3, 2, 4]),
        (dvicl::graph::named::rary_tree(2, 3), vec![7, 3]),
    ] {
        let (t, i) = setup(&g);
        let mut via_at = enumerate_images(&t, &i, &query, 100_000).matches;
        let mut via_sm = sm::ssm_via_sm(&g, &t, &i, &query, 100_000);
        via_at.sort();
        via_sm.sort();
        assert_eq!(via_at, via_sm, "disagreement on query {query:?}");
    }
}

#[test]
fn key_is_relabeling_covariant() {
    // Clustering results must not depend on vertex names: the multiset of
    // key-classes of all edges is invariant under relabeling.
    let g = dvicl::graph::named::fig3_example();
    let gamma =
        dvicl::graph::Perm::from_cycles(g.n(), &[&[0, 9, 4], &[10, 12], &[11, 13]]).unwrap();
    let h = g.permuted(&gamma);
    let class_profile = |g: &Graph| -> Vec<usize> {
        let (t, i) = setup(g);
        let mut by_key: std::collections::HashMap<Vec<u8>, usize> = Default::default();
        for (a, b) in g.edges() {
            *by_key.entry(symmetric_key(&t, &i, &[a, b])).or_default() += 1;
        }
        let mut sizes: Vec<usize> = by_key.into_values().collect();
        sizes.sort_unstable();
        sizes
    };
    assert_eq!(class_profile(&g), class_profile(&h));
}

#[test]
fn seed_set_counting_scales_to_analogs() {
    // A twin-rich analog must admit a large number of symmetric images of
    // a seed set placed on twin fans.
    let g = dvicl::data::social::generate(&dvicl::data::social::SocialConfig {
        core_n: 1000,
        twin_fans: 50,
        fan_size: 6,
        tree_hubs: 0,
        ring_pockets: 0,
        ..Default::default()
    });
    let (t, i) = setup(&g);
    // Pick one pendant twin per fan: each contributes a factor of 6.
    let mut seeds: Vec<V> = Vec::new();
    for v in (0..g.n() as V).rev() {
        if g.degree(v) == 1 && seeds.len() < 10 {
            let hub = g.neighbors(v)[0];
            if !seeds.iter().any(|&s| g.neighbors(s)[0] == hub) {
                seeds.push(v);
            }
        }
    }
    assert_eq!(seeds.len(), 10);
    let count = count_images(&t, &i, &seeds);
    // Each of the 10 seeds sits in a twin class of >= 6 members.
    assert!(
        count >= dvicl::group::BigUint::from_u64(6u64.pow(10)),
        "count {count} too small"
    );
}

#[test]
fn colored_graphs_restrict_symmetry() {
    let g = dvicl::graph::named::star(6);
    // Unit colors: all leaves interchangeable → C(6,2) = 15 images.
    let (t, i) = setup(&g);
    assert_eq!(count_images(&t, &i, &[1, 2]).to_u64(), Some(15));
    // Two-color leaves {1,2,3} vs {4,5,6}: only 3×3 = 9 images of a mixed
    // pair, and C(3,2) = 3 of a same-color pair.
    let pi = Coloring::from_cells(vec![vec![0], vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
    let t2 = build_autotree(&g, &pi, &DviclOptions::default());
    let i2 = SsmIndex::new(&t2);
    assert_eq!(count_images(&t2, &i2, &[1, 4]).to_u64(), Some(9));
    assert_eq!(count_images(&t2, &i2, &[1, 2]).to_u64(), Some(3));
    let res = enumerate_images(&t2, &i2, &[1, 2], 100);
    assert!(!res.truncated);
    assert_eq!(res.matches.len(), 3);
}
