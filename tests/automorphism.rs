//! End-to-end automorphism tests: group orders, orbits and generators
//! produced through every path (AutoTree, simplified AutoTree, IR
//! baseline, Schreier–Sims) agree with each other and with brute force.

use dvicl::canon::{canonical_form as ir, Config};
use dvicl::core::{aut, build_autotree, simplify, DviclOptions};
use dvicl::graph::{named, Coloring, Graph, V};
use dvicl::group::{brute, BigUint, StabChain};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<u32>(), 0..30).prop_map(move |raw| {
            let edges: Vec<(V, V)> = raw
                .iter()
                .map(|&x| ((x % n as u32) as V, ((x / 7919) % n as u32) as V))
                .collect();
            Graph::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four group-order computations agree with brute force.
    #[test]
    fn group_orders_agree(g in arb_graph(8)) {
        let pi = Coloring::unit(g.n());
        let truth = BigUint::from_u64(brute::automorphism_count(&g, &pi));

        let tree = build_autotree(&g, &pi, &DviclOptions::default());
        prop_assert_eq!(&aut::group_order(&tree), &truth);

        let s = simplify::dvicl_simplified(&g, &pi, &DviclOptions::default());
        prop_assert_eq!(&s.original_group_order(), &truth);

        let base = ir(&g, &pi, &Config::bliss_like());
        prop_assert_eq!(&StabChain::new(g.n(), &base.generators).order(), &truth);
    }

    /// Orbits from the AutoTree equal orbits of the brute-force group.
    #[test]
    fn orbits_agree(g in arb_graph(8)) {
        let pi = Coloring::unit(g.n());
        let tree = build_autotree(&g, &pi, &DviclOptions::default());
        let mut ours = aut::orbits(&tree);
        let mut truth = dvicl::group::Orbits::identity(g.n());
        for gamma in brute::automorphisms(&g, &pi) {
            truth.absorb(&gamma);
        }
        prop_assert_eq!(ours.cells(), truth.cells());
    }

    /// Every generator the AutoTree emits is a genuine automorphism.
    #[test]
    fn generators_are_automorphisms(g in arb_graph(10)) {
        let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
        for gen in aut::generators(&tree) {
            prop_assert_eq!(&g.permuted(&gen), &g);
        }
    }
}

#[test]
fn wreath_product_structures() {
    // Known compound groups through the AutoTree path.
    let cases: Vec<(Graph, u64)> = vec![
        // 4 disjoint edges: S2 ≀ S4 = 2^4 · 4! = 384.
        (
            Graph::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]),
            384,
        ),
        // two disjoint triangles: (3!)² · 2 = 72.
        (named::cycle(3).disjoint_union(&named::cycle(3)), 72),
        // star of stars: center with 3 copies of K_{1,2}: (2!)³·3! = 48.
        (
            Graph::from_edges(
                10,
                &[(0, 1), (1, 2), (1, 3), (0, 4), (4, 5), (4, 6), (0, 7), (7, 8), (7, 9)],
            ),
            48,
        ),
        // balanced binary tree of depth 3: 2^7 = 128... the group of a
        // depth-3 binary tree is the iterated wreath: 2^7? It is
        // ((2)·(2))-wise: |Aut| = 2^(#internal nodes) = 2^7 = 128.
        (named::rary_tree(2, 3), 128),
    ];
    for (g, expected) in cases {
        let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());
        assert_eq!(
            aut::group_order(&tree).to_u64(),
            Some(expected),
            "wrong order for {g:?}"
        );
    }
}

#[test]
fn benchmark_groups_are_large() {
    // Vertex-transitive benchmark graphs must have |Aut| >= n.
    let opts = DviclOptions {
        leaf_config: Config::traces_like(),
        ..DviclOptions::default()
    };
    for (name, g) in [
        ("grid", dvicl::data::bench_graphs::wrapped_grid(&[4, 4, 4])),
        ("had-16", dvicl::data::bench_graphs::hadamard(16)),
        ("pg2-5", dvicl::data::bench_graphs::pg2(5)),
    ] {
        let tree = build_autotree(&g, &Coloring::unit(g.n()), &opts);
        let order = aut::group_order(&tree);
        assert!(
            order >= BigUint::from_u64(g.n() as u64),
            "{name}: |Aut| = {order} < n = {}",
            g.n()
        );
    }
}

#[test]
fn grid_group_order_exact() {
    // The 3-torus C4×C4×C4 is secretly the 6-dimensional hypercube
    // (C4 = K2□K2, so C4□C4□C4 = K2^□6 = Q6), whose automorphism group is
    // the hyperoctahedral group of order 2^6 · 6! = 46080 — strictly more
    // than the naive (translations × signed coordinate permutations)
    // count of 3072. The AutoTree/IR path finds the full group.
    let g = dvicl::data::bench_graphs::wrapped_grid(&[4, 4, 4]);
    let opts = DviclOptions {
        leaf_config: Config::traces_like(),
        ..DviclOptions::default()
    };
    let tree = build_autotree(&g, &Coloring::unit(g.n()), &opts);
    assert_eq!(aut::group_order(&tree).to_u64(), Some(46080));
    // A q=5 torus has no such collapse: |Aut(C5□C5□C5)| = (2·5)³·3! = 6000.
    let g5 = dvicl::data::bench_graphs::wrapped_grid(&[5, 5, 5]);
    let tree5 = build_autotree(&g5, &Coloring::unit(g5.n()), &opts);
    assert_eq!(aut::group_order(&tree5).to_u64(), Some(6000));
}

#[test]
fn algebraic_graph_families() {
    let opts = DviclOptions {
        leaf_config: Config::traces_like(),
        ..DviclOptions::default()
    };
    // Paley(13): |Aut| = q(q−1)/2 = 78.
    let p13 = named::paley(13);
    let t = build_autotree(&p13, &Coloring::unit(13), &opts);
    assert_eq!(aut::group_order(&t).to_u64(), Some(78));
    // Kneser K(5,2) = Petersen: |Aut| = 120; Johnson J(5,2): also S_5.
    let kn = named::kneser(5, 2);
    let t = build_autotree(&kn, &Coloring::unit(kn.n()), &opts);
    assert_eq!(aut::group_order(&t).to_u64(), Some(120));
    let j = named::johnson(5, 2);
    let t = build_autotree(&j, &Coloring::unit(j.n()), &opts);
    assert_eq!(aut::group_order(&t).to_u64(), Some(120));
    // Johnson J(4,2) is the octahedron K_{2,2,2}: |Aut| = 2^3·3! = 48.
    let oct = named::johnson(4, 2);
    let t = build_autotree(&oct, &Coloring::unit(6), &opts);
    assert_eq!(aut::group_order(&t).to_u64(), Some(48));
}

#[test]
fn paley_is_self_complementary() {
    let p = named::paley(13);
    let gamma = dvicl::core::iso::find_isomorphism(&p, &p.complement())
        .expect("Paley graphs are self-complementary");
    assert_eq!(p.permuted(&gamma), p.complement());
}

#[test]
fn hypercube_group_orders() {
    // |Aut(Q_d)| = 2^d · d!.
    let opts = DviclOptions {
        leaf_config: Config::traces_like(),
        ..DviclOptions::default()
    };
    for (d, expected) in [(2u32, 8u64), (3, 48), (4, 384), (5, 3840)] {
        let g = named::hypercube(d as usize);
        let t = build_autotree(&g, &Coloring::unit(g.n()), &opts);
        assert_eq!(aut::group_order(&t).to_u64(), Some(expected), "Q_{d}");
    }
}
