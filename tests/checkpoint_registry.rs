//! Self-check: the checkpoint registry, the static analyzer, and a
//! dynamic probe must agree on the set of fault-injection sites.
//!
//! Three views of "every checkpoint in the pipeline":
//!
//! 1. **Declared** — `govern::fault::CHECKPOINT_SITES`, the registry
//!    the fault-plan docs and DESIGN.md §11 point at.
//! 2. **Written** — the `fault::checkpoint("…")` call sites
//!    `dvicl-lint`'s item parser extracts from the workspace source
//!    (the same extraction the registry-coherence rule cross-checks
//!    in CI).
//! 3. **Executed** — the sites a probe-mode run actually hits when the
//!    pipeline is driven end to end: edge-list parsing, graph6
//!    decoding, a divided AutoTree build (which exercises refinement,
//!    individualization, arena carves, leaf IR, DFS search, and the
//!    budget), a threaded build (which exercises pool spawns), a
//!    symmetric-subgraph-matching query, and a fingerprint index
//!    insert + DVIX1 round trip.
//!
//! If someone adds a checkpoint without registering it, view 2 drifts
//! from view 1 (also a lint failure). If a registered site becomes
//! unreachable — dead code, a refactor that skips it — view 3 drifts
//! from view 1, which no purely static check can catch. This test is
//! its own binary because the fault plan is process-global.

use dvicl::core::ssm::{symmetric_key, SsmIndex};
use dvicl::core::{build_autotree, DviclOptions};
use dvicl::govern::fault::{self, FaultPlan, CHECKPOINT_SITES};
use dvicl::graph::{graph6, io, Coloring, Fingerprint};
use dvicl::index::FingerprintIndex;
use std::collections::BTreeSet;

#[test]
fn registry_analyzer_and_probe_agree() {
    // The registry itself: sorted and duplicate-free, so diffs against
    // it are stable.
    let registry: BTreeSet<&str> = CHECKPOINT_SITES.iter().copied().collect();
    assert_eq!(
        registry.len(),
        CHECKPOINT_SITES.len(),
        "CHECKPOINT_SITES contains duplicates"
    );
    let mut sorted = CHECKPOINT_SITES.to_vec();
    sorted.sort_unstable();
    assert_eq!(
        sorted.as_slice(),
        &CHECKPOINT_SITES[..],
        "CHECKPOINT_SITES must stay sorted"
    );

    // View 2: the analyzer's extraction of non-test checkpoint call
    // sites across the whole workspace.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = dvicl_lint::analyze_workspace(root).expect("analyze the workspace");
    let written: BTreeSet<String> =
        dvicl_lint::rules::registry_coherence::used_checkpoint_sites(&ws)
            .into_iter()
            .map(|u| u.site)
            .collect();
    let written_refs: BTreeSet<&str> = written.iter().map(String::as_str).collect();
    assert_eq!(
        written_refs, registry,
        "analyzer-extracted checkpoint sites diverge from CHECKPOINT_SITES"
    );

    // View 3: a probe-mode run across every checkpoint surface.
    fault::install(FaultPlan::probe());

    // graph.edge_line + a graph with enough symmetry to exercise
    // refinement, individualization, and non-singleton leaves: K4 plus
    // a pendant path.
    let loaded = io::read_edge_list(
        "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n4 5\n".as_bytes(),
    )
    .expect("parse edge list");
    let g = loaded.graph;

    // graph.graph6 (round-trip through the encoder so the string is
    // authoritative).
    let decoded = graph6::from_graph6(&graph6::to_graph6(&g)).expect("decode graph6");
    assert_eq!(decoded.n(), g.n());

    // The build: refine.refine, core.build_node, core.arena_carve,
    // govern.spend.
    let tree = build_autotree(&g, &Coloring::unit(g.n()), &DviclOptions::default());

    // core.ssm: one symmetric-key query over the built tree.
    let index = SsmIndex::new(&tree);
    let _key = symmetric_key(&tree, &index, &[0, 1]);

    // An 8-cycle is vertex-transitive: refinement cannot split the unit
    // coloring, so the build lands in a non-singleton leaf and must run
    // the full canonical search — core.leaf_ir, refine.individualize,
    // and canon.dfs.
    let cycle = io::read_edge_list("0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 0\n".as_bytes())
        .expect("parse cycle edge list")
        .graph;
    let _cycle_tree = build_autotree(&cycle, &Coloring::unit(cycle.n()), &DviclOptions::default());

    // pool.spawn: a threaded build over a graph whose components are
    // large enough (>= the spawn threshold) to be exported to the
    // work-stealing pool.
    let mut two_cycles = String::new();
    for i in 0u32..64 {
        two_cycles.push_str(&format!("{} {}\n", i, (i + 1) % 64));
        two_cycles.push_str(&format!("{} {}\n", 64 + i, 64 + (i + 1) % 64));
    }
    let tc = io::read_edge_list(two_cycles.as_bytes())
        .expect("parse two-cycle edge list")
        .graph;
    let _par_tree = build_autotree(
        &tc,
        &Coloring::unit(tc.n()),
        &DviclOptions {
            threads: 2,
            ..DviclOptions::default()
        },
    );

    // index.insert + index.load: ingest a certificate into a
    // fingerprint index and round-trip it through the DVIX1 format.
    let form = tree.canonical_form().to_form();
    let mut fpi = FingerprintIndex::new();
    fpi.insert(Fingerprint::of_form(&form), form, true)
        .expect("insert certificate");
    let mut saved = Vec::new();
    fpi.save_to(&mut saved).expect("serialize index");
    let loaded = FingerprintIndex::load_from(&mut saved.as_slice(), true).expect("reload index");
    assert_eq!(loaded.len(), fpi.len());

    let hits = fault::hit_counts();
    fault::clear();
    let executed: BTreeSet<&str> = hits
        .iter()
        .filter(|&&(_, count)| count > 0)
        .map(|&(site, _)| site)
        .collect();
    assert_eq!(
        executed, registry,
        "probe-executed checkpoint sites diverge from CHECKPOINT_SITES \
         (hit counts: {hits:?})"
    );
}
