//! Differential oracle for the work-stealing parallel build: over a
//! corpus of suite graphs, `--threads 1` and `--threads 4` must produce
//! **byte-identical** results — the same canonical form and the same
//! generator list, in the same order.
//!
//! This is the external half of the determinism contract (DESIGN.md
//! §14; the field-by-field AutoTree comparison lives next to the
//! builder in `dvicl-core`): parallelism may only change wall-clock
//! time, never a single byte of output, because every `CombineST` join
//! realizes its children in part order regardless of which worker built
//! them. Each graph is also built at `--threads 4` through a reused
//! [`Session`] to pin the combination of worker-scratch reuse and
//! parallel construction.

use dvicl::core::{aut, DviclOptions, Session};
use dvicl::graph::{named, Coloring, Graph};

/// Suite graphs whose debug-mode builds stay in test-friendly time,
/// plus named graphs covering the spawn-relevant shapes: multiple
/// equal components, nested divisions, and non-singleton leaves.
fn corpus() -> Vec<(String, Graph)> {
    let mut graphs: Vec<(String, Graph)> = vec![
        ("fig1".into(), named::fig1_example()),
        ("petersen_x2".into(), named::petersen().disjoint_union(&named::petersen())),
        (
            "cycles_40_48_40".into(),
            named::cycle(40)
                .disjoint_union(&named::cycle(48))
                .disjoint_union(&named::cycle(40)),
        ),
        ("rary_3_4".into(), named::rary_tree(3, 4)),
        (
            "cube_plus_k49".into(),
            named::hypercube(3).disjoint_union(&named::complete_bipartite(4, 9)),
        ),
    ];
    for d in dvicl::data::benchmark_suite() {
        if ["mz-aug-50", "fpga11-20-like"].contains(&d.name) {
            graphs.push((d.name.to_string(), (d.build)()));
        }
    }
    graphs
}

fn session(threads: usize) -> Session {
    Session::new(DviclOptions {
        threads,
        ..DviclOptions::default()
    })
}

#[test]
fn threads_1_and_4_are_byte_identical() {
    let mut seq = session(1);
    let mut par = session(4);
    for (name, g) in corpus() {
        let a = seq.build(&g, &Coloring::unit(g.n()));
        let b = par.build(&g, &Coloring::unit(g.n()));
        assert_eq!(
            a.canonical_form(),
            b.canonical_form(),
            "{name}: canonical form differs between threads 1 and 4"
        );
        assert_eq!(
            a.canonical_labeling(),
            b.canonical_labeling(),
            "{name}: canonical labeling differs between threads 1 and 4"
        );
        assert_eq!(
            aut::generators(&a),
            aut::generators(&b),
            "{name}: generator list differs between threads 1 and 4"
        );
        assert_eq!(
            aut::group_order(&a),
            aut::group_order(&b),
            "{name}: |Aut(G)| differs between threads 1 and 4"
        );
    }
}
